package graph

import (
	"fmt"
	"math"
	"sort"
)

// Delta is a staged batch of mutations against one base Graph snapshot: node
// additions, edge upserts (add or reweight), edge removals and node removals.
// Nothing is applied until Commit merges the delta into a fresh Graph one
// epoch later; until then the base graph keeps serving unchanged, and the
// staged state can be previewed through the View overlay.
//
// Node IDs are stable across commits: added nodes extend the ID space and
// removed nodes keep their ID, type and label but lose every incident edge
// (they become isolated, so no round trip passes through them and they drop
// out of all rankings). This is what lets epochs roll over under live traffic
// without renumbering anything a client might be holding.
//
// Ops are idempotent set-semantics, not an op log: the staged state always
// describes the final desired adjacency, with later calls overriding earlier
// ones (SetEdge after RemoveEdge re-adds the edge; RemoveNode discards staged
// edges touching the node). A Delta is not safe for concurrent use.
type Delta struct {
	base *Graph

	// staged node additions, IDs base.NumNodes()..base.NumNodes()+len-1
	newTypes   []Type
	newLabels  []string
	newByLabel map[string]NodeID

	set          map[edgeKey]float64 // final weights of added/reweighted edges
	removed      map[edgeKey]bool    // base edges to drop
	removedNodes map[NodeID]bool     // nodes to isolate
}

type edgeKey struct{ from, to NodeID }

// NewDelta returns an empty mutation batch against base.
func NewDelta(base *Graph) *Delta {
	return &Delta{
		base:         base,
		newByLabel:   make(map[string]NodeID),
		set:          make(map[edgeKey]float64),
		removed:      make(map[edgeKey]bool),
		removedNodes: make(map[NodeID]bool),
	}
}

// Base returns the graph snapshot the delta was staged against.
func (d *Delta) Base() *Graph { return d.base }

// NumNodes returns the node count the committed graph will have.
func (d *Delta) NumNodes() int { return d.base.numNodes + len(d.newTypes) }

// Empty reports whether the delta stages no mutations. Committing an empty
// delta still produces a new epoch (useful for forcing a rollover).
func (d *Delta) Empty() bool {
	return len(d.newTypes) == 0 && len(d.set) == 0 && len(d.removed) == 0 && len(d.removedNodes) == 0
}

// Ops returns the staged mutation counts, for logging and ingestion replies.
func (d *Delta) Ops() (addedNodes, setEdges, removedEdges, removedNodes int) {
	return len(d.newTypes), len(d.set), len(d.removed), len(d.removedNodes)
}

// AddNode stages a new node with the given type and label and returns its ID
// (base.NumNodes() plus its position in the batch). Labels must be unique;
// adding a label the base graph or the batch already has returns the existing
// node's ID, mirroring Builder.AddNode.
func (d *Delta) AddNode(t Type, label string) NodeID {
	if v := d.base.NodeByLabel(label); v != NoNode {
		return v
	}
	if v, ok := d.newByLabel[label]; ok {
		return v
	}
	id := NodeID(d.base.numNodes + len(d.newTypes))
	d.newTypes = append(d.newTypes, t)
	d.newLabels = append(d.newLabels, label)
	d.newByLabel[label] = id
	return id
}

// NodeByLabel resolves a label against the base graph and the staged
// additions, or returns NoNode.
func (d *Delta) NodeByLabel(label string) NodeID {
	if v := d.base.NodeByLabel(label); v != NoNode {
		return v
	}
	if v, ok := d.newByLabel[label]; ok {
		return v
	}
	return NoNode
}

// checkNode validates that v exists in the base graph or the staged additions.
func (d *Delta) checkNode(v NodeID) error {
	if v < 0 || int(v) >= d.NumNodes() {
		return fmt.Errorf("graph: delta: node %d does not exist (have %d nodes)", v, d.NumNodes())
	}
	return nil
}

// SetEdge stages the directed edge from->to with the given positive weight:
// an insert when the edge does not exist, a reweight when it does. It undoes a
// staged removal of the same edge, and re-attaches edges to a node staged for
// removal (the staging order decides, matching operator intent).
func (d *Delta) SetEdge(from, to NodeID, w float64) error {
	if !(w > 0) || math.IsInf(w, 1) {
		return fmt.Errorf("graph: delta: edge weight must be positive and finite, got %g", w)
	}
	if from == to {
		return fmt.Errorf("graph: delta: self-loop on node %d is not supported", from)
	}
	if err := d.checkNode(from); err != nil {
		return err
	}
	if err := d.checkNode(to); err != nil {
		return err
	}
	k := edgeKey{from, to}
	delete(d.removed, k)
	d.set[k] = w
	return nil
}

// SetUndirectedEdge stages an undirected edge as two directed edges of equal
// weight.
func (d *Delta) SetUndirectedEdge(a, b NodeID, w float64) error {
	if err := d.SetEdge(a, b, w); err != nil {
		return err
	}
	return d.SetEdge(b, a, w)
}

// RemoveEdge stages the removal of the directed edge from->to. The edge must
// exist — in the base graph or as a staged addition; removing a staged
// addition simply unstages it.
func (d *Delta) RemoveEdge(from, to NodeID) error {
	if err := d.checkNode(from); err != nil {
		return err
	}
	if err := d.checkNode(to); err != nil {
		return err
	}
	k := edgeKey{from, to}
	staged := false
	if _, ok := d.set[k]; ok {
		delete(d.set, k)
		staged = true
	}
	if int(from) < d.base.numNodes && d.base.HasEdge(from, to) {
		d.removed[k] = true
		return nil
	}
	if !staged {
		return fmt.Errorf("graph: delta: edge %d->%d does not exist", from, to)
	}
	return nil
}

// RemoveUndirectedEdge stages the removal of both directions of an undirected
// edge.
func (d *Delta) RemoveUndirectedEdge(a, b NodeID) error {
	if err := d.RemoveEdge(a, b); err != nil {
		return err
	}
	return d.RemoveEdge(b, a)
}

// RemoveNode stages the isolation of node v: every incident edge (in either
// direction, including staged ones) is dropped, while the node keeps its ID,
// type and label. Isolated nodes score zero under every round-trip measure
// and are never returned in rankings. A later SetEdge may re-attach the node.
func (d *Delta) RemoveNode(v NodeID) error {
	if err := d.checkNode(v); err != nil {
		return err
	}
	for k := range d.set {
		if k.from == v || k.to == v {
			delete(d.set, k)
		}
	}
	for k := range d.removed {
		if k.from == v || k.to == v {
			delete(d.removed, k)
		}
	}
	d.removedNodes[v] = true
	return nil
}

// stagedEdge is one staged addition/reweight, indexed per row for the merge.
type stagedEdge struct {
	other NodeID // the non-row endpoint
	w     float64
}

// rowAdds indexes the staged upserts by one endpoint, each row sorted by the
// other endpoint so merges against the (sorted) base CSR rows stay ordered.
func (d *Delta) rowAdds(byFrom bool) map[NodeID][]stagedEdge {
	adds := make(map[NodeID][]stagedEdge)
	for k, w := range d.set {
		if byFrom {
			adds[k.from] = append(adds[k.from], stagedEdge{other: k.to, w: w})
		} else {
			adds[k.to] = append(adds[k.to], stagedEdge{other: k.from, w: w})
		}
	}
	for _, row := range adds {
		sort.Slice(row, func(i, j int) bool { return row[i].other < row[j].other })
	}
	return adds
}

// dropBase reports whether a base edge from->to is superseded by the staged
// state: removed explicitly, incident to a removed node, or shadowed by an
// upsert (the upsert is emitted from the staged side of the merge).
func (d *Delta) dropBase(from, to NodeID) bool {
	if d.removedNodes[from] || d.removedNodes[to] {
		return true
	}
	if d.removed[edgeKey{from, to}] {
		return true
	}
	_, shadowed := d.set[edgeKey{from, to}]
	return shadowed
}

// mergeRow yields the final adjacency of one row in ascending neighbor order:
// the surviving base entries merged with the staged upserts. base may be nil
// (a new or removed node's base row).
func mergeRow(baseCol []NodeID, baseW []float64, drop func(other NodeID) bool, adds []stagedEdge, yield func(other NodeID, w float64)) {
	ai := 0
	for i, to := range baseCol {
		if drop(to) {
			continue
		}
		for ai < len(adds) && adds[ai].other < to {
			yield(adds[ai].other, adds[ai].w)
			ai++
		}
		yield(to, baseW[i])
	}
	for ; ai < len(adds); ai++ {
		yield(adds[ai].other, adds[ai].w)
	}
}

// baseOutRow returns the base out-adjacency of v, or nil slices when v is new
// or staged for removal.
func (d *Delta) baseOutRow(v NodeID) ([]NodeID, []float64) {
	if int(v) >= d.base.numNodes || d.removedNodes[v] {
		return nil, nil
	}
	return d.base.OutNeighbors(v)
}

// baseInRow is baseOutRow for the transposed adjacency.
func (d *Delta) baseInRow(v NodeID) ([]NodeID, []float64) {
	if int(v) >= d.base.numNodes || d.removedNodes[v] {
		return nil, nil
	}
	return d.base.InNeighbors(v)
}

// Commit merges the delta into a fresh immutable Graph whose epoch is
// base.Epoch()+1 — the base graph is untouched and keeps serving its own
// snapshot. The merge streams each base CSR row once against the sorted
// staged upserts, so a commit costs O(nodes + edges + staged·log staged) and
// the resulting arrays are laid out exactly as a Builder would lay them out:
// committing a delta and rebuilding the equivalent graph from scratch produce
// bit-identical adjacency (only epoch and fingerprint differ), which the
// cross-epoch parity suite pins for every execution method.
//
// The delta must have been staged against base; committing it against any
// other snapshot is refused (stage a fresh delta instead).
func Commit(base *Graph, d *Delta) (*Graph, error) {
	if d == nil {
		return nil, fmt.Errorf("graph: commit: nil delta")
	}
	if d.base != base {
		return nil, fmt.Errorf("graph: commit: delta was staged against a different snapshot (epoch %d, committing against epoch %d)",
			d.base.epoch, base.epoch)
	}
	n := d.NumNodes()
	g := &Graph{
		numNodes:  n,
		epoch:     base.epoch + 1,
		types:     make([]Type, 0, n),
		labels:    make([]string, 0, n),
		typeNames: make(map[Type]string, len(base.typeNames)),
		byLabel:   make(map[string]NodeID, n),
	}
	g.types = append(append(g.types, base.types...), d.newTypes...)
	g.labels = append(append(g.labels, base.labels...), d.newLabels...)
	for t, name := range base.typeNames {
		g.typeNames[t] = name
	}
	for l, id := range base.byLabel {
		g.byLabel[l] = id
	}
	for l, id := range d.newByLabel {
		g.byLabel[l] = id
	}

	// Forward CSR: stream every row's merged adjacency in order.
	outAdds := d.rowAdds(true)
	g.out = CSR{RowPtr: make([]int64, n+1), Sum: make([]float64, n)}
	for v := 0; v < n; v++ {
		col, w := d.baseOutRow(NodeID(v))
		mergeRow(col, w, func(to NodeID) bool { return d.dropBase(NodeID(v), to) }, outAdds[NodeID(v)],
			func(to NodeID, ew float64) {
				g.out.Col = append(g.out.Col, to)
				g.out.Weight = append(g.out.Weight, ew)
				g.out.Sum[v] += ew
			})
		g.out.RowPtr[v+1] = int64(len(g.out.Col))
	}
	g.numEdges = len(g.out.Col)

	// Transposed CSR by counting sort, exactly as Builder.Build does: rows are
	// visited in (from, to) order, so each in-row lists sources ascending.
	m := g.numEdges
	g.in = CSR{RowPtr: make([]int64, n+1), Col: make([]NodeID, m), Weight: make([]float64, m), Sum: make([]float64, n)}
	for _, to := range g.out.Col {
		g.in.RowPtr[to+1]++
	}
	for v := 0; v < n; v++ {
		g.in.RowPtr[v+1] += g.in.RowPtr[v]
	}
	cursor := make([]int64, n)
	copy(cursor, g.in.RowPtr[:n])
	for v := 0; v < n; v++ {
		lo, hi := g.out.RowPtr[v], g.out.RowPtr[v+1]
		for i := lo; i < hi; i++ {
			to := g.out.Col[i]
			j := cursor[to]
			g.in.Col[j] = NodeID(v)
			g.in.Weight[j] = g.out.Weight[i]
			cursor[to]++
			g.in.Sum[to] += g.out.Weight[i]
		}
	}
	return g, nil
}

// DeltaView is a read-only overlay presenting the delta's staged state merged
// over the base graph's CSR arrays, without committing: base rows stream
// straight from the base CSR with removals and reweights applied, staged
// additions are merged in neighbor order. It is a snapshot of the delta at
// View() time; later staging is not reflected.
//
// The overlay implements the generic View interface (degree and weight-sum
// queries cost one O(degree) row merge), so exact solves and the online
// search run on it unchanged through the interface fallback of the walk
// kernels. The parallel CSR kernels need flat arrays: compact-on-commit is
// the intended fast path (Commit produces them), and graph.Compact flattens
// an overlay into a CSRView when a pre-commit view must be solved repeatedly.
type DeltaView struct {
	base         *Graph
	n            int
	outAdds      map[NodeID][]stagedEdge
	inAdds       map[NodeID][]stagedEdge
	set          map[edgeKey]float64
	removed      map[edgeKey]bool
	removedNodes map[NodeID]bool
	newTypes     []Type
}

// View snapshots the staged state as a read-only overlay over the base graph.
func (d *Delta) View() *DeltaView {
	v := &DeltaView{
		base:         d.base,
		n:            d.NumNodes(),
		outAdds:      d.rowAdds(true),
		inAdds:       d.rowAdds(false),
		set:          make(map[edgeKey]float64, len(d.set)),
		removed:      make(map[edgeKey]bool, len(d.removed)),
		removedNodes: make(map[NodeID]bool, len(d.removedNodes)),
		newTypes:     append([]Type(nil), d.newTypes...),
	}
	for k, w := range d.set {
		v.set[k] = w
	}
	for k := range d.removed {
		v.removed[k] = true
	}
	for k := range d.removedNodes {
		v.removedNodes[k] = true
	}
	return v
}

// dropBase mirrors Delta.dropBase over the snapshot's own maps.
func (v *DeltaView) dropBase(from, to NodeID) bool {
	if v.removedNodes[from] || v.removedNodes[to] {
		return true
	}
	if v.removed[edgeKey{from, to}] {
		return true
	}
	_, shadowed := v.set[edgeKey{from, to}]
	return shadowed
}

func (v *DeltaView) baseOut(u NodeID) ([]NodeID, []float64) {
	if int(u) >= v.base.numNodes || v.removedNodes[u] {
		return nil, nil
	}
	return v.base.OutNeighbors(u)
}

func (v *DeltaView) baseIn(u NodeID) ([]NodeID, []float64) {
	if int(u) >= v.base.numNodes || v.removedNodes[u] {
		return nil, nil
	}
	return v.base.InNeighbors(u)
}

// NumNodes implements View.
func (v *DeltaView) NumNodes() int { return v.n }

// Epoch implements Epocher: the overlay previews the next epoch.
func (v *DeltaView) Epoch() uint64 { return v.base.epoch + 1 }

// Type reports the node type, covering staged additions; it satisfies the
// engine's TypedView so type filters work on an overlay.
func (v *DeltaView) Type(u NodeID) Type {
	if int(u) < v.base.numNodes {
		return v.base.Type(u)
	}
	return v.newTypes[int(u)-v.base.numNodes]
}

// EachOut implements View.
func (v *DeltaView) EachOut(u NodeID, fn func(to NodeID, w float64) bool) {
	col, w := v.baseOut(u)
	stopped := false
	mergeRow(col, w, func(to NodeID) bool { return v.dropBase(u, to) }, v.outAdds[u],
		func(to NodeID, ew float64) {
			if !stopped && !fn(to, ew) {
				stopped = true
			}
		})
}

// EachIn implements View.
func (v *DeltaView) EachIn(u NodeID, fn func(from NodeID, w float64) bool) {
	col, w := v.baseIn(u)
	stopped := false
	mergeRow(col, w, func(from NodeID) bool { return v.dropBase(from, u) }, v.inAdds[u],
		func(from NodeID, ew float64) {
			if !stopped && !fn(from, ew) {
				stopped = true
			}
		})
}

// OutDegree implements View.
func (v *DeltaView) OutDegree(u NodeID) int {
	n := 0
	v.EachOut(u, func(NodeID, float64) bool { n++; return true })
	return n
}

// InDegree implements View.
func (v *DeltaView) InDegree(u NodeID) int {
	n := 0
	v.EachIn(u, func(NodeID, float64) bool { n++; return true })
	return n
}

// OutWeightSum implements View.
func (v *DeltaView) OutWeightSum(u NodeID) float64 {
	s := 0.0
	v.EachOut(u, func(_ NodeID, w float64) bool { s += w; return true })
	return s
}

// InWeightSum implements View.
func (v *DeltaView) InWeightSum(u NodeID) float64 {
	s := 0.0
	v.EachIn(u, func(_ NodeID, w float64) bool { s += w; return true })
	return s
}
