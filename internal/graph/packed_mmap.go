//go:build packedmmap

package graph

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile memory-maps the file read-only: packed rows are then demand-paged
// by the kernel and shared between processes mapping the same graph. Build
// with -tags packedmmap to enable; the default build reads the file into
// memory instead (see packed_nommap.go).
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil, fmt.Errorf("graph: mmap %s: empty file", path)
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("graph: mmap %s: file too large", path)
	}
	buf, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	return buf, func() error { return syscall.Munmap(buf) }, nil
}
