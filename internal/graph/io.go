package graph

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// wireGraph is the gob-serializable form of a Graph. Epoch was added for live
// graphs; gob decodes streams written without it as epoch zero.
type wireGraph struct {
	NumNodes  int
	NumEdges  int
	Epoch     uint64
	Types     []Type
	Labels    []string
	OutOff    []int64
	OutTo     []NodeID
	OutW      []float64
	TypeNames map[Type]string
}

// Encode writes g to w in a compact gob format. Only the out-adjacency is
// written; the in-adjacency and weight sums are rebuilt on decode.
func Encode(w io.Writer, g *Graph) error {
	wg := wireGraph{
		NumNodes:  g.numNodes,
		NumEdges:  g.numEdges,
		Epoch:     g.epoch,
		Types:     g.types,
		Labels:    g.labels,
		OutOff:    g.out.RowPtr,
		OutTo:     g.out.Col,
		OutW:      g.out.Weight,
		TypeNames: g.typeNames,
	}
	return gob.NewEncoder(w).Encode(&wg)
}

// Decode reads a Graph previously written with Encode.
func Decode(r io.Reader) (*Graph, error) {
	var wg wireGraph
	if err := gob.NewDecoder(r).Decode(&wg); err != nil {
		return nil, fmt.Errorf("graph: decode: %w", err)
	}
	if wg.NumNodes < 0 || len(wg.OutOff) != wg.NumNodes+1 {
		return nil, fmt.Errorf("graph: decode: corrupt offsets")
	}
	if len(wg.Types) != wg.NumNodes || len(wg.Labels) != wg.NumNodes {
		return nil, fmt.Errorf("graph: decode: node metadata length mismatch")
	}
	if len(wg.OutTo) != len(wg.OutW) {
		return nil, fmt.Errorf("graph: decode: edge array length mismatch")
	}
	b := NewBuilder()
	for t, name := range wg.TypeNames {
		b.RegisterType(t, name)
	}
	for i := 0; i < wg.NumNodes; i++ {
		b.AddNode(wg.Types[i], wg.Labels[i])
	}
	if b.NumNodes() != wg.NumNodes {
		return nil, fmt.Errorf("graph: decode: duplicate node labels")
	}
	for v := 0; v < wg.NumNodes; v++ {
		lo, hi := wg.OutOff[v], wg.OutOff[v+1]
		if lo < 0 || hi < lo || hi > int64(len(wg.OutTo)) {
			return nil, fmt.Errorf("graph: decode: offset of node %d out of range", v)
		}
		for i := lo; i < hi; i++ {
			if err := b.AddEdge(NodeID(v), wg.OutTo[i], wg.OutW[i]); err != nil {
				return nil, fmt.Errorf("graph: decode: %w", err)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	g.epoch = wg.Epoch
	return g, nil
}

// WriteFile encodes g into the named file.
func WriteFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	if err := Encode(bw, g); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile decodes a graph from the named file.
func ReadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(bufio.NewReader(f))
}
