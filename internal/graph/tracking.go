package graph

// TrackingView wraps a View and records which nodes' adjacency lists have been
// accessed. The recorded set approximates the "active set" of Sect. V-B — the
// nodes and edges a top-K query actually needs in memory — and is used by the
// scalability experiments (Fig. 12, Fig. 13) to report active-set sizes.
type TrackingView struct {
	base View

	accessed map[NodeID]bool
	edges    int64
}

// NewTrackingView wraps base with access tracking.
func NewTrackingView(base View) *TrackingView {
	return &TrackingView{base: base, accessed: make(map[NodeID]bool)}
}

// NumNodes implements View.
func (t *TrackingView) NumNodes() int { return t.base.NumNodes() }

// OutDegree implements View.
func (t *TrackingView) OutDegree(v NodeID) int { return t.base.OutDegree(v) }

// InDegree implements View.
func (t *TrackingView) InDegree(v NodeID) int { return t.base.InDegree(v) }

// OutWeightSum implements View.
func (t *TrackingView) OutWeightSum(v NodeID) float64 { return t.base.OutWeightSum(v) }

// InWeightSum implements View.
func (t *TrackingView) InWeightSum(v NodeID) float64 { return t.base.InWeightSum(v) }

// EachOut implements View, recording the access.
func (t *TrackingView) EachOut(v NodeID, fn func(to NodeID, w float64) bool) {
	t.touch(v)
	t.base.EachOut(v, func(to NodeID, w float64) bool {
		t.edges++
		return fn(to, w)
	})
}

// EachIn implements View, recording the access.
func (t *TrackingView) EachIn(v NodeID, fn func(from NodeID, w float64) bool) {
	t.touch(v)
	t.base.EachIn(v, func(from NodeID, w float64) bool {
		t.edges++
		return fn(from, w)
	})
}

func (t *TrackingView) touch(v NodeID) {
	if !t.accessed[v] {
		t.accessed[v] = true
	}
}

// ActiveNodes returns the number of distinct nodes whose adjacency was read.
func (t *TrackingView) ActiveNodes() int { return len(t.accessed) }

// ActiveSetBytes estimates the in-memory size of the active set: per-node
// metadata plus the adjacency entries of every accessed node, using the same
// per-entry cost model as Graph.SizeBytes.
func (t *TrackingView) ActiveSetBytes() int64 {
	perNode := int64(1 + 8 + 8 + 8 + 8 + 8)
	perEdge := int64(4 + 8)
	var edgeEntries int64
	for v := range t.accessed {
		edgeEntries += int64(t.base.OutDegree(v) + t.base.InDegree(v))
	}
	return int64(len(t.accessed))*perNode + edgeEntries*perEdge
}

// Reset clears the recorded accesses.
func (t *TrackingView) Reset() {
	t.accessed = make(map[NodeID]bool)
	t.edges = 0
}
