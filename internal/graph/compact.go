package graph

// CompactedView is an arbitrary View flattened into immutable CSR arrays. It
// carries no labels or types — only the adjacency structure — and exists so
// that wrapped views (masked, tracking, remote) can be handed to the parallel
// walk kernels, which require the flat CSRView layout.
//
// A compaction is a snapshot: later changes to the source view (e.g. a
// different edge mask) are not reflected.
type CompactedView struct {
	n   int
	out CSR
	in  CSR
}

// Compact flattens view into a CompactedView with one pass over its out- and
// in-adjacency. If view is already a CSRView it is returned wrapped without
// copying. The cost is O(nodes + edges); worth paying when the same view is
// solved against repeatedly, as in the evaluation sweeps that run many
// measures over one masked graph.
func Compact(view View) *CompactedView {
	if cv, ok := view.(CSRView); ok {
		return &CompactedView{n: cv.NumNodes(), out: cv.OutCSR(), in: cv.InCSR()}
	}
	n := view.NumNodes()
	return &CompactedView{
		n:   n,
		out: compactSide(n, view.EachOut),
		in:  compactSide(n, view.EachIn),
	}
}

func compactSide(n int, each func(NodeID, func(NodeID, float64) bool)) CSR {
	c := CSR{
		RowPtr: make([]int64, n+1),
		Sum:    make([]float64, n),
	}
	for v := 0; v < n; v++ {
		each(NodeID(v), func(to NodeID, w float64) bool {
			c.Col = append(c.Col, to)
			c.Weight = append(c.Weight, w)
			c.Sum[v] += w
			return true
		})
		c.RowPtr[v+1] = int64(len(c.Col))
	}
	return c
}

// NumNodes implements View.
func (c *CompactedView) NumNodes() int { return c.n }

// OutDegree implements View.
func (c *CompactedView) OutDegree(v NodeID) int { return c.out.Degree(v) }

// InDegree implements View.
func (c *CompactedView) InDegree(v NodeID) int { return c.in.Degree(v) }

// OutWeightSum implements View.
func (c *CompactedView) OutWeightSum(v NodeID) float64 { return c.out.Sum[v] }

// InWeightSum implements View.
func (c *CompactedView) InWeightSum(v NodeID) float64 { return c.in.Sum[v] }

// EachOut implements View.
func (c *CompactedView) EachOut(v NodeID, fn func(to NodeID, w float64) bool) {
	lo, hi := c.out.RowPtr[v], c.out.RowPtr[v+1]
	for i := lo; i < hi; i++ {
		if !fn(c.out.Col[i], c.out.Weight[i]) {
			return
		}
	}
}

// EachIn implements View.
func (c *CompactedView) EachIn(v NodeID, fn func(from NodeID, w float64) bool) {
	lo, hi := c.in.RowPtr[v], c.in.RowPtr[v+1]
	for i := lo; i < hi; i++ {
		if !fn(c.in.Col[i], c.in.Weight[i]) {
			return
		}
	}
}

// OutCSR implements CSRView.
func (c *CompactedView) OutCSR() CSR { return c.out }

// InCSR implements CSRView.
func (c *CompactedView) InCSR() CSR { return c.in }
