package graph

import (
	"fmt"
	"math"
	"sort"
)

// Builder accumulates nodes and edges and produces an immutable Graph.
// Builders are not safe for concurrent use.
type Builder struct {
	types     []Type
	labels    []string
	byLabel   map[string]NodeID
	typeNames map[Type]string

	// edge accumulation: parallel edges between the same ordered pair are
	// merged by summing weights at Build time.
	from    []NodeID
	to      []NodeID
	weights []float64
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		byLabel:   make(map[string]NodeID),
		typeNames: make(map[Type]string),
	}
}

// RegisterType gives a human-readable name to a node type.
func (b *Builder) RegisterType(t Type, name string) {
	b.typeNames[t] = name
}

// AddNode adds a node with the given type and label and returns its ID. Labels
// must be unique; adding a duplicate label returns the existing node's ID.
func (b *Builder) AddNode(t Type, label string) NodeID {
	if id, ok := b.byLabel[label]; ok {
		return id
	}
	id := NodeID(len(b.types))
	b.types = append(b.types, t)
	b.labels = append(b.labels, label)
	b.byLabel[label] = id
	return id
}

// AddNodes appends count label-less nodes in one call and returns the ID of
// the first; the block is contiguous, so node i of the batch is first+i.
// typeAt assigns each node's type by batch index (nil means Untyped for all).
// Unlike AddNode, the nodes carry no labels and are not registered for
// NodeByLabel lookup — the bulk path exists for synthetic generators and
// edge-list ingestion at million-node scale, where per-node label strings and
// the dedup map would dominate the graph's own memory.
func (b *Builder) AddNodes(count int, typeAt func(i int) Type) NodeID {
	first := NodeID(len(b.types))
	if cap(b.types)-len(b.types) < count {
		types := make([]Type, len(b.types), len(b.types)+count)
		copy(types, b.types)
		b.types = types
		labels := make([]string, len(b.labels), len(b.labels)+count)
		copy(labels, b.labels)
		b.labels = labels
	}
	for i := 0; i < count; i++ {
		t := Untyped
		if typeAt != nil {
			t = typeAt(i)
		}
		b.types = append(b.types, t)
		b.labels = append(b.labels, "")
	}
	return first
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.types) }

// NodeByLabel returns the node previously added with the given label, or
// NoNode.
func (b *Builder) NodeByLabel(label string) NodeID {
	if id, ok := b.byLabel[label]; ok {
		return id
	}
	return NoNode
}

// AddEdge adds a directed edge from->to with the given positive weight.
// Self-loops are rejected: the neighborhood bounds of Sect. V-A (Prop. 4 and
// the border-node bound of Eq. 22) assume a random surfer cannot stay in
// place, which holds for the paper's bibliographic and query-log graphs.
func (b *Builder) AddEdge(from, to NodeID, w float64) error {
	// The comparison is written so NaN fails it too; infinities would pass
	// through every solver as NaN products, so they are rejected as well.
	if !(w > 0) || math.IsInf(w, 1) {
		return fmt.Errorf("graph: edge weight must be positive and finite, got %g", w)
	}
	if from == to {
		return fmt.Errorf("graph: self-loop on node %d is not supported", from)
	}
	if err := b.checkNode(from); err != nil {
		return err
	}
	if err := b.checkNode(to); err != nil {
		return err
	}
	b.from = append(b.from, from)
	b.to = append(b.to, to)
	b.weights = append(b.weights, w)
	return nil
}

// AddUndirectedEdge adds an undirected edge as two directed edges of equal
// weight.
func (b *Builder) AddUndirectedEdge(a, bNode NodeID, w float64) error {
	if err := b.AddEdge(a, bNode, w); err != nil {
		return err
	}
	return b.AddEdge(bNode, a, w)
}

// MustAddEdge is AddEdge but panics on error; convenient for generators whose
// inputs are known valid.
func (b *Builder) MustAddEdge(from, to NodeID, w float64) {
	if err := b.AddEdge(from, to, w); err != nil {
		panic(err)
	}
}

// MustAddUndirectedEdge is AddUndirectedEdge but panics on error.
func (b *Builder) MustAddUndirectedEdge(a, bNode NodeID, w float64) {
	if err := b.AddUndirectedEdge(a, bNode, w); err != nil {
		panic(err)
	}
}

func (b *Builder) checkNode(v NodeID) error {
	if v < 0 || int(v) >= len(b.types) {
		return fmt.Errorf("graph: node %d does not exist (have %d nodes)", v, len(b.types))
	}
	return nil
}

// Build produces the immutable CSR Graph. Parallel directed edges between the
// same ordered pair are merged by summing their weights. Self-loops are kept.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.types)
	// Merge parallel edges via a sort by (from, to).
	type edge struct {
		from, to NodeID
		w        float64
	}
	edges := make([]edge, len(b.from))
	for i := range b.from {
		edges[i] = edge{b.from[i], b.to[i], b.weights[i]}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	merged := edges[:0]
	for _, e := range edges {
		if len(merged) > 0 && merged[len(merged)-1].from == e.from && merged[len(merged)-1].to == e.to {
			merged[len(merged)-1].w += e.w
			continue
		}
		merged = append(merged, e)
	}
	m := len(merged)

	g := &Graph{
		numNodes: n,
		numEdges: m,
		types:    append([]Type(nil), b.types...),
		labels:   append([]string(nil), b.labels...),
		out: CSR{
			RowPtr: make([]int64, n+1),
			Col:    make([]NodeID, m),
			Weight: make([]float64, m),
			Sum:    make([]float64, n),
		},
		in: CSR{
			RowPtr: make([]int64, n+1),
			Col:    make([]NodeID, m),
			Weight: make([]float64, m),
			Sum:    make([]float64, n),
		},
		typeNames: make(map[Type]string, len(b.typeNames)),
		byLabel:   make(map[string]NodeID, len(b.byLabel)),
	}
	for t, name := range b.typeNames {
		g.typeNames[t] = name
	}
	for l, id := range b.byLabel {
		g.byLabel[l] = id
	}

	// Out CSR (merged is already sorted by from).
	for _, e := range merged {
		g.out.RowPtr[e.from+1]++
	}
	for v := 0; v < n; v++ {
		g.out.RowPtr[v+1] += g.out.RowPtr[v]
	}
	cursor := make([]int64, n)
	copy(cursor, g.out.RowPtr[:n])
	for _, e := range merged {
		i := cursor[e.from]
		g.out.Col[i] = e.to
		g.out.Weight[i] = e.w
		cursor[e.from]++
		g.out.Sum[e.from] += e.w
	}

	// Transposed (in) CSR.
	for _, e := range merged {
		g.in.RowPtr[e.to+1]++
	}
	for v := 0; v < n; v++ {
		g.in.RowPtr[v+1] += g.in.RowPtr[v]
	}
	copy(cursor, g.in.RowPtr[:n])
	for _, e := range merged {
		i := cursor[e.to]
		g.in.Col[i] = e.from
		g.in.Weight[i] = e.w
		cursor[e.to]++
		g.in.Sum[e.to] += e.w
	}

	return g, nil
}

// MustBuild is Build but panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
