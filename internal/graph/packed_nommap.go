//go:build !packedmmap

package graph

import "os"

// mapFile reads the whole file into memory. The packedmmap build tag swaps in
// a memory-mapped implementation; this default keeps the codec portable and
// dependency-free.
func mapFile(path string) ([]byte, func() error, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return buf, nil, nil
}
