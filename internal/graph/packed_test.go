package graph

import (
	"bytes"
	"hash/crc32"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
)

// packedTestGraph builds a denser random graph than stripeTestGraph: mixed
// unit and non-unit weights so some rows take the const-weight encoding and
// some do not, plus isolated nodes.
func packedTestGraph(t testing.TB, n, edges int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = b.AddNode(Untyped, "p:"+string(rune('0'+i%10))+string(rune('a'+i/10%26))+string(rune('A'+i/260)))
	}
	for e := 0; e < edges; e++ {
		from := rng.Intn(n)
		to := rng.Intn(n)
		if from == to {
			continue
		}
		w := 1.0
		if rng.Intn(3) == 0 {
			w = rng.Float64()*4 + 0.25
		}
		if err := b.AddEdge(ids[from], ids[to], w); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func packedTestViews(t testing.TB) map[string]CSRView {
	return map[string]CSRView{
		"stripe": stripeTestGraph(t),
		"random": packedTestGraph(t, 200, 1600, 7),
		"sparse": packedTestGraph(t, 64, 40, 11),
	}
}

func TestPackUnpackBitIdentical(t *testing.T) {
	for name, g := range packedTestViews(t) {
		p := Pack(g)
		u := p.Unpack()
		for side, pair := range map[string][2]CSR{
			"out": {g.OutCSR(), u.OutCSR()},
			"in":  {g.InCSR(), u.InCSR()},
		} {
			want, got := pair[0], pair[1]
			if !reflect.DeepEqual(want.RowPtr, got.RowPtr) {
				t.Fatalf("%s/%s: RowPtr changed across Pack/Unpack", name, side)
			}
			if !reflect.DeepEqual(want.Col, got.Col) {
				t.Fatalf("%s/%s: Col changed across Pack/Unpack", name, side)
			}
			if !reflect.DeepEqual(want.Weight, got.Weight) {
				t.Fatalf("%s/%s: Weight changed across Pack/Unpack", name, side)
			}
			if !reflect.DeepEqual(want.Sum, got.Sum) {
				t.Fatalf("%s/%s: Sum changed across Pack/Unpack", name, side)
			}
		}
	}
}

func TestPackedViewMatchesFlat(t *testing.T) {
	for name, g := range packedTestViews(t) {
		p := Pack(g)
		if p.NumNodes() != g.NumNodes() {
			t.Fatalf("%s: NumNodes %d != %d", name, p.NumNodes(), g.NumNodes())
		}
		for v := NodeID(0); int(v) < g.NumNodes(); v++ {
			if p.OutDegree(v) != g.OutDegree(v) || p.InDegree(v) != g.InDegree(v) {
				t.Fatalf("%s: node %d degree mismatch", name, v)
			}
			if p.OutWeightSum(v) != g.OutWeightSum(v) || p.InWeightSum(v) != g.InWeightSum(v) {
				t.Fatalf("%s: node %d weight sum mismatch", name, v)
			}
			type edge struct {
				to NodeID
				w  float64
			}
			var want, got []edge
			g.EachOut(v, func(to NodeID, w float64) bool { want = append(want, edge{to, w}); return true })
			p.EachOut(v, func(to NodeID, w float64) bool { got = append(got, edge{to, w}); return true })
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: node %d out rows differ:\nwant %v\ngot  %v", name, v, want, got)
			}
			want, got = nil, nil
			g.EachIn(v, func(from NodeID, w float64) bool { want = append(want, edge{from, w}); return true })
			p.EachIn(v, func(from NodeID, w float64) bool { got = append(got, edge{from, w}); return true })
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: node %d in rows differ", name, v)
			}
		}
	}
}

func TestPackedRowsSession(t *testing.T) {
	g := packedTestGraph(t, 120, 900, 3)
	p := Pack(g)
	rows := p.NewRows()
	if rows.NumNodes() != g.NumNodes() {
		t.Fatalf("NumNodes %d != %d", rows.NumNodes(), g.NumNodes())
	}
	out := g.OutCSR()
	in := g.InCSR()
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		if rows.OutDegree(v) != out.Degree(v) {
			t.Fatalf("node %d OutDegree mismatch", v)
		}
		if rows.OutSum(v) != out.Sum[v] {
			t.Fatalf("node %d OutSum mismatch", v)
		}
		cols, wts := rows.OutRow(v)
		wantC, wantW := out.Row(v)
		if !sameRow(cols, wts, wantC, wantW) {
			t.Fatalf("node %d OutRow differs", v)
		}
		cols, wts = rows.InRow(v)
		wantC, wantW = in.Row(v)
		if !sameRow(cols, wts, wantC, wantW) {
			t.Fatalf("node %d InRow differs", v)
		}
	}
}

func sameRow(c []NodeID, w []float64, wc []NodeID, ww []float64) bool {
	if len(c) != len(wc) || len(w) != len(ww) {
		return false
	}
	for i := range c {
		if c[i] != wc[i] || math.Float64bits(w[i]) != math.Float64bits(ww[i]) {
			return false
		}
	}
	return true
}

// TestPackedSizeBytes pins the point of the representation: a unit-weight
// bibnet-like graph must pack to well under the flat arrays' footprint.
func TestPackedSizeBytes(t *testing.T) {
	g := packedTestGraph(t, 500, 4000, 13)
	p := Pack(g)
	flat := g.OutCSR().SizeBytes() + g.InCSR().SizeBytes()
	packed := p.SizeBytes()
	if packed >= flat*7/10 {
		t.Fatalf("packed %d bytes is not ≥30%% below flat %d bytes", packed, flat)
	}
}

func TestPackedEpochCarried(t *testing.T) {
	g := stripeTestGraph(t)
	p := Pack(g)
	if p.Epoch() != g.Epoch() {
		t.Fatalf("packed epoch %d != graph epoch %d", p.Epoch(), g.Epoch())
	}
	if p.NumEdges() != len(g.OutCSR().Col) {
		t.Fatalf("packed edges %d != %d", p.NumEdges(), len(g.OutCSR().Col))
	}
}

func encodePacked(t testing.TB, p *Packed) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodePacked(&buf, p); err != nil {
		t.Fatalf("EncodePacked: %v", err)
	}
	return buf.Bytes()
}

func TestPackedFileRoundTrip(t *testing.T) {
	g := packedTestGraph(t, 150, 1000, 5)
	p := Pack(g)
	path := filepath.Join(t.TempDir(), "graph.rtp")
	if err := WritePackedFile(path, p); err != nil {
		t.Fatalf("WritePackedFile: %v", err)
	}
	got, err := LoadPackedFile(path)
	if err != nil {
		t.Fatalf("LoadPackedFile: %v", err)
	}
	defer got.Close()
	if got.NumNodes() != p.NumNodes() || got.NumEdges() != p.NumEdges() || got.Epoch() != p.Epoch() {
		t.Fatalf("header changed across the codec")
	}
	want, back := p.Unpack(), got.Unpack()
	if !reflect.DeepEqual(want, back) {
		t.Fatalf("adjacency changed across the codec")
	}
	if err := got.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestPackedDecodeTruncation(t *testing.T) {
	enc := encodePacked(t, Pack(stripeTestGraph(t)))
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodePacked(enc[:cut]); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", cut, len(enc))
		}
	}
}

func TestPackedDecodeCorruption(t *testing.T) {
	enc := encodePacked(t, Pack(stripeTestGraph(t)))
	for i := range enc {
		mut := bytes.Clone(enc)
		mut[i] ^= 0x40
		if _, err := DecodePacked(mut); err == nil {
			t.Fatalf("decode with byte %d corrupted succeeded", i)
		}
	}
}

func TestPackedDecodeForgedLength(t *testing.T) {
	enc := encodePacked(t, Pack(stripeTestGraph(t)))
	// The out block's RowOff length prefix sits right after the 32-byte
	// header. Forge it to a huge count; the decoder must reject it against
	// the remaining buffer size, not attempt the allocation. (The CRC is
	// recomputed so the corruption reaches the structural checks.)
	mut := bytes.Clone(enc)
	putLE64(mut[32:], 1<<40)
	fixPackedCRC(mut)
	if _, err := DecodePacked(mut); err == nil {
		t.Fatalf("decode with forged array length succeeded")
	}
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// fixPackedCRC rewrites the trailing checksum so a deliberately corrupted
// stream passes the CRC gate and exercises the structural validation behind
// it.
func fixPackedCRC(enc []byte) {
	body := enc[:len(enc)-4]
	sum := crc32.Checksum(body, castagnoli)
	for i := 0; i < 4; i++ {
		enc[len(enc)-4+i] = byte(sum >> (8 * i))
	}
}

func FuzzDecodePacked(f *testing.F) {
	g := stripeTestGraph(f)
	f.Add(encodePacked(f, Pack(g)))
	f.Add(encodePacked(f, Pack(packedTestGraph(f, 40, 200, 2))))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip()
		}
		p, err := DecodePacked(data)
		if err != nil {
			return
		}
		// Whatever decodes must satisfy every invariant the unchecked fast
		// paths rely on, and re-encode byte-identically.
		u := p.Unpack()
		d := &StripeData{Index: 0, Count: 1, NumNodes: p.NumNodes(), Out: u.OutCSR(), In: u.InCSR()}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted packed graph fails CSR validation: %v", err)
		}
		var buf bytes.Buffer
		if err := EncodePacked(&buf, p); err != nil {
			t.Fatalf("re-encode of accepted packed graph: %v", err)
		}
		back, err := DecodePacked(buf.Bytes())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(p.Unpack(), back.Unpack()) {
			t.Fatalf("packed graph changed across re-encode")
		}
	})
}
