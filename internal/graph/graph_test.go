package graph

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildSmall(t *testing.T) (*Graph, []NodeID) {
	t.Helper()
	b := NewBuilder()
	b.RegisterType(1, "kind")
	a := b.AddNode(1, "a")
	c := b.AddNode(1, "b")
	d := b.AddNode(2, "c")
	e := b.AddNode(2, "d")
	b.MustAddEdge(a, c, 1)
	b.MustAddEdge(c, d, 2)
	b.MustAddEdge(d, a, 0.5)
	b.MustAddUndirectedEdge(d, e, 3)
	b.MustAddEdge(a, c, 1) // parallel edge, should merge to weight 2
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g, []NodeID{a, c, d, e}
}

func TestBuilderAndAccessors(t *testing.T) {
	g, ids := buildSmall(t)
	a, c, d, e := ids[0], ids[1], ids[2], ids[3]

	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	// a->c (merged), c->d, d->a, d->e, e->d => 5 directed edges.
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if w, ok := g.EdgeWeight(a, c); !ok || w != 2 {
		t.Errorf("EdgeWeight(a,c) = %v,%v want 2,true", w, ok)
	}
	if g.OutDegree(d) != 2 || g.InDegree(d) != 2 {
		t.Errorf("degrees of d: out=%d in=%d, want 2,2", g.OutDegree(d), g.InDegree(d))
	}
	if got := g.TransitionProb(d, a); math.Abs(got-0.5/3.5) > 1e-12 {
		t.Errorf("TransitionProb(d,a) = %g, want %g", got, 0.5/3.5)
	}
	if g.Type(a) != 1 || g.Type(e) != 2 {
		t.Errorf("types wrong: %d %d", g.Type(a), g.Type(e))
	}
	if g.TypeName(1) != "kind" {
		t.Errorf("TypeName(1) = %q", g.TypeName(1))
	}
	if g.TypeName(9) == "" {
		t.Errorf("TypeName fallback should be non-empty")
	}
	if g.NodeByLabel("b") != c {
		t.Errorf("NodeByLabel(b) = %d, want %d", g.NodeByLabel("b"), c)
	}
	if g.NodeByLabel("zzz") != NoNode {
		t.Errorf("NodeByLabel(zzz) should be NoNode")
	}
	if n := len(g.NodesOfType(2)); n != 2 {
		t.Errorf("NodesOfType(2) has %d nodes, want 2", n)
	}
	if g.CountOfType(1) != 2 {
		t.Errorf("CountOfType(1) = %d, want 2", g.CountOfType(1))
	}
	if g.Degree(d) != 4 {
		t.Errorf("Degree(d) = %d, want 4", g.Degree(d))
	}
	if g.AverageDegree() <= 0 {
		t.Errorf("AverageDegree should be positive")
	}
	if g.SizeBytes() <= 0 {
		t.Errorf("SizeBytes should be positive")
	}
	if !g.HasEdge(c, d) || g.HasEdge(c, a) {
		t.Errorf("HasEdge results wrong")
	}
	outs, ws := g.OutNeighbors(d)
	if len(outs) != 2 || len(ws) != 2 {
		t.Errorf("OutNeighbors(d) lengths %d,%d", len(outs), len(ws))
	}
	ins, iws := g.InNeighbors(d)
	if len(ins) != 2 || len(iws) != 2 {
		t.Errorf("InNeighbors(d) lengths %d,%d", len(ins), len(iws))
	}
}

func TestBuilderDuplicateLabelAndErrors(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode(Untyped, "x")
	a2 := b.AddNode(Untyped, "x")
	if a != a2 {
		t.Fatalf("duplicate label should return same node: %d vs %d", a, a2)
	}
	if b.NodeByLabel("x") != a {
		t.Fatalf("NodeByLabel on builder failed")
	}
	if b.NodeByLabel("missing") != NoNode {
		t.Fatalf("NodeByLabel(missing) should be NoNode")
	}
	if err := b.AddEdge(a, a, 0); err == nil {
		t.Errorf("zero-weight edge should be rejected")
	}
	if err := b.AddEdge(a, 99, 1); err == nil {
		t.Errorf("edge to missing node should be rejected")
	}
	if err := b.AddEdge(99, a, 1); err == nil {
		t.Errorf("edge from missing node should be rejected")
	}
	if b.NumNodes() != 1 {
		t.Errorf("NumNodes = %d, want 1", b.NumNodes())
	}
}

func TestEachOutEarlyStop(t *testing.T) {
	g, ids := buildSmall(t)
	d := ids[2]
	count := 0
	g.EachOut(d, func(NodeID, float64) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("EachOut early stop visited %d edges, want 1", count)
	}
	count = 0
	g.EachIn(d, func(NodeID, float64) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("EachIn early stop visited %d edges, want 1", count)
	}
}

func TestMaskedView(t *testing.T) {
	g, ids := buildSmall(t)
	a, c, d, e := ids[0], ids[1], ids[2], ids[3]
	mv := NewMaskedView(g, []EdgeKey{{From: d, To: e}, {From: e, To: d}, {From: a, To: e} /* nonexistent */})
	if mv.HiddenCount() != 2 {
		t.Fatalf("HiddenCount = %d, want 2", mv.HiddenCount())
	}
	if mv.NumNodes() != g.NumNodes() {
		t.Errorf("NumNodes mismatch")
	}
	if mv.OutDegree(d) != 1 || mv.InDegree(d) != 1 {
		t.Errorf("masked degrees of d: out=%d in=%d, want 1,1", mv.OutDegree(d), mv.InDegree(d))
	}
	if mv.OutDegree(e) != 0 {
		t.Errorf("masked out degree of e = %d, want 0", mv.OutDegree(e))
	}
	if got := mv.OutWeightSum(d); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("masked OutWeightSum(d) = %g, want 0.5", got)
	}
	if got := mv.InWeightSum(e); got != 0 {
		t.Errorf("masked InWeightSum(e) = %g, want 0", got)
	}
	seen := false
	mv.EachOut(d, func(to NodeID, w float64) bool {
		if to == e {
			seen = true
		}
		return true
	})
	if seen {
		t.Errorf("masked edge d->e still visible")
	}
	// Unaffected nodes keep their values.
	if mv.OutWeightSum(c) != g.OutWeightSum(c) {
		t.Errorf("unaffected node sum changed")
	}
	// Renormalized transition over the mask.
	if p := TransitionProb(mv, d, a); math.Abs(p-1.0) > 1e-12 {
		t.Errorf("TransitionProb on mask = %g, want 1", p)
	}
	_ = c
}

func TestTransitionProbZeroOutDegree(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode(Untyped, "a")
	c := b.AddNode(Untyped, "b")
	b.MustAddEdge(a, c, 1)
	g := b.MustBuild()
	if p := g.TransitionProb(c, a); p != 0 {
		t.Errorf("dangling node transition = %g, want 0", p)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g, ids := buildSmall(t)
	a, c, d := ids[0], ids[1], ids[2]
	sub := Induced(g, []NodeID{a, c, d, d})
	if sub.Graph.NumNodes() != 3 {
		t.Fatalf("subgraph nodes = %d, want 3", sub.Graph.NumNodes())
	}
	// Edges within {a,c,d}: a->c, c->d, d->a.
	if sub.Graph.NumEdges() != 3 {
		t.Fatalf("subgraph edges = %d, want 3", sub.Graph.NumEdges())
	}
	for sv, pv := range sub.ToParent {
		if sub.FromParent[pv] != NodeID(sv) {
			t.Errorf("mapping inconsistent for parent %d", pv)
		}
		if sub.Graph.Label(NodeID(sv)) != g.Label(pv) {
			t.Errorf("label not preserved for parent %d", pv)
		}
		if sub.Graph.Type(NodeID(sv)) != g.Type(pv) {
			t.Errorf("type not preserved for parent %d", pv)
		}
	}
	if err := sub.Graph.Validate(); err != nil {
		t.Fatalf("subgraph Validate: %v", err)
	}
}

func TestExpandHops(t *testing.T) {
	// Line 0->1->2->3->4 built directly to control direction.
	b := NewBuilder()
	var ids []NodeID
	for i := 0; i < 5; i++ {
		ids = append(ids, b.AddNode(Untyped, string(rune('a'+i))))
	}
	for i := 0; i+1 < 5; i++ {
		b.MustAddEdge(ids[i], ids[i+1], 1)
	}
	g := b.MustBuild()
	got := ExpandHops(g, []NodeID{ids[2]}, 1)
	if len(got) != 3 {
		t.Fatalf("1-hop expansion size = %d, want 3 (uses both directions)", len(got))
	}
	got = ExpandHops(g, []NodeID{ids[0]}, 10)
	if len(got) != 5 {
		t.Fatalf("full expansion size = %d, want 5", len(got))
	}
	if len(ExpandHops(g, nil, 3)) != 0 {
		t.Fatalf("empty seeds should expand to nothing")
	}
}

func TestLargestSCC(t *testing.T) {
	// Two cycles of size 3 and 4 plus a bridge.
	b := NewBuilder()
	var ids []NodeID
	for i := 0; i < 7; i++ {
		ids = append(ids, b.AddNode(Untyped, string(rune('a'+i))))
	}
	for i := 0; i < 3; i++ {
		b.MustAddEdge(ids[i], ids[(i+1)%3], 1)
	}
	for i := 3; i < 7; i++ {
		b.MustAddEdge(ids[i], ids[3+(i-3+1)%4], 1)
	}
	b.MustAddEdge(ids[0], ids[3], 1)
	g := b.MustBuild()
	scc := LargestStronglyConnectedComponent(g)
	if len(scc) != 4 {
		t.Fatalf("largest SCC size = %d, want 4", len(scc))
	}
	for _, v := range scc {
		if v < 3 {
			t.Errorf("node %d should not be in the largest SCC", v)
		}
	}
}

func TestIsStronglyReachable(t *testing.T) {
	cyc := buildCycle(5)
	if !IsStronglyReachable(cyc, 0) {
		t.Errorf("cycle should be strongly reachable from any node")
	}
	line := buildLine(4)
	if IsStronglyReachable(line, 0) {
		t.Errorf("line should not be strongly reachable")
	}
}

func buildCycle(n int) *Graph {
	b := NewBuilder()
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddNode(Untyped, string(rune('a'+i)))
	}
	for i := 0; i < n; i++ {
		b.MustAddEdge(ids[i], ids[(i+1)%n], 1)
	}
	return b.MustBuild()
}

func buildLine(n int) *Graph {
	b := NewBuilder()
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddNode(Untyped, string(rune('a'+i)))
	}
	for i := 0; i+1 < n; i++ {
		b.MustAddEdge(ids[i], ids[i+1], 1)
	}
	return b.MustBuild()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g, _ := buildSmall(t)
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	g2, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		if g2.Label(NodeID(v)) != g.Label(NodeID(v)) || g2.Type(NodeID(v)) != g.Type(NodeID(v)) {
			t.Errorf("node %d metadata mismatch", v)
		}
		if math.Abs(g2.OutWeightSum(NodeID(v))-g.OutWeightSum(NodeID(v))) > 1e-12 {
			t.Errorf("node %d out weight sum mismatch", v)
		}
	}
	if err := g2.Validate(); err != nil {
		t.Fatalf("decoded graph Validate: %v", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	g, _ := buildSmall(t)
	path := t.TempDir() + "/g.gob"
	if err := WriteFile(path, g); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	g2, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count mismatch after file round trip")
	}
	if _, err := ReadFile(path + ".missing"); err == nil {
		t.Fatalf("ReadFile on missing path should fail")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatalf("Decode of garbage should fail")
	}
}

// randomGraph builds a random graph with n nodes and about m directed edges.
func randomGraph(rng *rand.Rand, n, m int) *Graph {
	b := NewBuilder()
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddNode(Type(rng.Intn(3)), "n"+itoa(i))
	}
	for i := 0; i < m; i++ {
		ui, vi := rng.Intn(n), rng.Intn(n)
		if ui == vi {
			vi = (ui + 1) % n
		}
		b.MustAddEdge(ids[ui], ids[vi], 0.1+rng.Float64())
	}
	return b.MustBuild()
}

func itoa(i int) string {
	var buf [8]byte
	pos := len(buf)
	if i == 0 {
		return "0"
	}
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// Property: every built random graph passes Validate, and total out weight
// equals total in weight (each edge contributes to both).
func TestQuickGraphInvariants(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw%30)
		m := 1 + int(mRaw%100)
		g := randomGraph(rng, n, m)
		if err := g.Validate(); err != nil {
			t.Logf("validate failed: %v", err)
			return false
		}
		outTotal, inTotal := 0.0, 0.0
		for v := 0; v < g.NumNodes(); v++ {
			outTotal += g.OutWeightSum(NodeID(v))
			inTotal += g.InWeightSum(NodeID(v))
		}
		return math.Abs(outTotal-inTotal) < 1e-6*(1+outTotal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: transition probabilities out of any node with out-degree > 0 sum
// to one, both on the plain graph and on a masked view.
func TestQuickTransitionRowsStochastic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(20), 5+rng.Intn(80))
		views := []View{g}
		// Mask a random existing edge if any.
		if g.NumEdges() > 0 {
			var key EdgeKey
			found := false
			for v := 0; v < g.NumNodes() && !found; v++ {
				g.EachOut(NodeID(v), func(to NodeID, w float64) bool {
					key = EdgeKey{NodeID(v), to}
					found = true
					return false
				})
			}
			views = append(views, NewMaskedView(g, []EdgeKey{key}))
		}
		for _, view := range views {
			for v := 0; v < view.NumNodes(); v++ {
				sum := 0.0
				deg := 0
				wsum := view.OutWeightSum(NodeID(v))
				view.EachOut(NodeID(v), func(to NodeID, w float64) bool {
					deg++
					if wsum > 0 {
						sum += w / wsum
					}
					return true
				})
				if deg > 0 && math.Abs(sum-1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
