package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// This file is the on-disk codec for a whole packed graph (graph.Packed): the
// scale harness's way of building a million-node graph once and reloading it
// per run. It deliberately differs from the stripe codec in shape — one file
// is the entire adjacency, not a stripe of it — but shares its safety
// posture: little-endian, length-prefixed arrays whose declared sizes are
// checked against the actual buffer before any allocation, a CRC-32C trailer
// over every preceding byte, and full structural validation (every row's
// varints walked defensively) before the fast unchecked iterators may touch
// the data.
//
// Layout:
//
//	magic    [4]byte  "RTP1"
//	version  uint16   currently 1
//	reserved uint16   must be zero
//	epoch    uint64   snapshot version of the source graph
//	numNodes uint64
//	numEdges uint64   directed edge count (out-direction entries)
//	out block, then in block, each:
//	    uint64 len(RowOff) followed by int64 entries
//	    uint64 len(Sum)    followed by float64 entries
//	    uint64 len(Data)   followed by raw row bytes
//	crc      uint32   CRC-32C (Castagnoli) of every preceding byte
//
// DecodePacked works on a byte slice rather than a reader so the Data arrays
// can alias the input — with the packedmmap build tag LoadPackedFile maps the
// file and the packed rows are served straight from the page cache.

// packedMagic identifies a packed-graph stream.
var packedMagic = [4]byte{'R', 'T', 'P', '1'}

// packedVersion is the current packed-graph codec version.
const packedVersion = 1

// EncodePacked writes p in the versioned, checksummed packed-graph format.
func EncodePacked(w io.Writer, p *Packed) error {
	bw := bufio.NewWriter(w)
	crc := crc32.New(castagnoli)
	out := io.MultiWriter(bw, crc)

	if _, err := out.Write(packedMagic[:]); err != nil {
		return err
	}
	hdr := []any{
		uint16(packedVersion), uint16(0),
		p.epoch, uint64(p.numNodes), uint64(p.numEdges),
	}
	for _, v := range hdr {
		if err := binary.Write(out, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, c := range []*PackedCSR{&p.out, &p.in} {
		if err := writePackedCSR(out, c); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

func writePackedCSR(w io.Writer, c *PackedCSR) error {
	if err := writeSlice(w, len(c.RowOff), func(i int) uint64 { return uint64(c.RowOff[i]) }, 8); err != nil {
		return err
	}
	if err := writeSlice(w, len(c.Sum), func(i int) uint64 { return packWeightBits(c.Sum[i]) }, 8); err != nil {
		return err
	}
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(c.Data)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(c.Data)
	return err
}

// DecodePacked parses a packed graph previously written with EncodePacked,
// verifying magic, version, trailing checksum, and every packed-row invariant.
// Declared array lengths are checked against the remaining buffer before any
// allocation, so a forged header cannot force a huge allocation. The returned
// view's Data arrays alias buf; the caller must keep buf alive (and unmodified)
// for the lifetime of the view.
func DecodePacked(buf []byte) (*Packed, error) {
	const hdrLen = 4 + 2 + 2 + 8 + 8 + 8
	if len(buf) < hdrLen+4 {
		return nil, fmt.Errorf("graph: decode packed: %d bytes is shorter than the header", len(buf))
	}
	if [4]byte(buf[:4]) != packedMagic {
		return nil, fmt.Errorf("graph: decode packed: bad magic %q", buf[:4])
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	stored := binary.LittleEndian.Uint32(tail)
	if sum := crc32.Checksum(body, castagnoli); stored != sum {
		return nil, fmt.Errorf("graph: decode packed: checksum mismatch (stored %08x, computed %08x)", stored, sum)
	}
	version := binary.LittleEndian.Uint16(body[4:])
	if version != packedVersion {
		return nil, fmt.Errorf("graph: decode packed: unsupported version %d", version)
	}
	if binary.LittleEndian.Uint16(body[6:]) != 0 {
		return nil, fmt.Errorf("graph: decode packed: non-zero reserved field")
	}
	epoch := binary.LittleEndian.Uint64(body[8:])
	numNodes := binary.LittleEndian.Uint64(body[16:])
	numEdges := binary.LittleEndian.Uint64(body[24:])
	const maxInt = uint64(int(^uint(0) >> 1))
	if numNodes > maxInt || numEdges > maxInt {
		return nil, fmt.Errorf("graph: decode packed: header sizes overflow")
	}
	p := &Packed{numNodes: int(numNodes), numEdges: int(numEdges), epoch: epoch}
	rest := body[hdrLen:]
	var err error
	if p.out, rest, err = readPackedCSR(rest); err != nil {
		return nil, fmt.Errorf("graph: decode packed: out block: %w", err)
	}
	if p.in, rest, err = readPackedCSR(rest); err != nil {
		return nil, fmt.Errorf("graph: decode packed: in block: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("graph: decode packed: %d trailing bytes", len(rest))
	}
	if err := validatePackedCSR("out", &p.out, p.numNodes, p.numNodes); err != nil {
		return nil, err
	}
	if err := validatePackedCSR("in", &p.in, p.numNodes, p.numNodes); err != nil {
		return nil, err
	}
	if got := countPackedEdges(&p.out); got != p.numEdges {
		return nil, fmt.Errorf("graph: decode packed: header claims %d edges, rows hold %d", p.numEdges, got)
	}
	return p, nil
}

func countPackedEdges(c *PackedCSR) int {
	total := 0
	for v := 0; v < c.Rows(); v++ {
		total += c.Degree(NodeID(v))
	}
	return total
}

// readPackedCSR parses one packed block from buf, returning the remainder.
// Every declared length is bounds-checked against the bytes actually present
// before allocating, so huge forged counts fail cheaply.
func readPackedCSR(buf []byte) (PackedCSR, []byte, error) {
	var c PackedCSR
	rowOff, buf, err := readPackedArray(buf, 8, func(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) })
	if err != nil {
		return c, nil, fmt.Errorf("offsets: %w", err)
	}
	c.RowOff = rowOff
	if c.Sum, buf, err = readPackedArray(buf, 8, func(b []byte) float64 { return unpackWeightBits(binary.LittleEndian.Uint64(b)) }); err != nil {
		return c, nil, fmt.Errorf("row sums: %w", err)
	}
	if len(buf) < 8 {
		return c, nil, fmt.Errorf("data: truncated length prefix")
	}
	n := binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	if n > uint64(len(buf)) {
		return c, nil, fmt.Errorf("data: declared %d bytes, %d remain", n, len(buf))
	}
	c.Data = buf[:n:n] // aliases the input buffer
	return c, buf[n:], nil
}

func readPackedArray[T any](buf []byte, width int, decode func([]byte) T) ([]T, []byte, error) {
	if len(buf) < 8 {
		return nil, nil, fmt.Errorf("truncated length prefix")
	}
	n := binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	if n > uint64(len(buf))/uint64(width) {
		return nil, nil, fmt.Errorf("declared %d entries, %d bytes remain", n, len(buf))
	}
	out := make([]T, n)
	for i := range out {
		out[i] = decode(buf[i*width:])
	}
	return out, buf[int(n)*width:], nil
}

// WritePackedFile encodes p into the named file.
func WritePackedFile(path string, p *Packed) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := EncodePacked(f, p); err != nil {
		return err
	}
	return f.Close()
}

// LoadPackedFile decodes a packed graph from the named file. Under the
// default build the file is read into memory; with the packedmmap build tag
// it is memory-mapped instead, so the packed rows are demand-paged and shared
// between processes. Either way, call Close on the returned view when done.
func LoadPackedFile(path string) (*Packed, error) {
	buf, closer, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	p, err := DecodePacked(buf)
	if err != nil {
		if closer != nil {
			closer()
		}
		return nil, err
	}
	p.closer = closer
	return p, nil
}
