package graph_test

import (
	"fmt"

	"roundtriprank/internal/graph"
)

// ExampleBuilder constructs an immutable CSR graph and inspects it.
func ExampleBuilder() {
	b := graph.NewBuilder()
	b.RegisterType(1, "paper")
	b.RegisterType(2, "term")
	p := b.AddNode(1, "paper:csr")
	t1 := b.AddNode(2, "term:sparse")
	t2 := b.AddNode(2, "term:matrix")
	b.MustAddUndirectedEdge(p, t1, 1)
	b.MustAddUndirectedEdge(p, t2, 2)
	g := b.MustBuild()

	fmt.Printf("%d nodes, %d directed edges, epoch %d\n", g.NumNodes(), g.NumEdges(), g.Epoch())
	fmt.Printf("out-degree(%s) = %d, out-weight = %g\n", g.Label(p), g.OutDegree(p), g.OutWeightSum(p))
	g.EachOut(p, func(to graph.NodeID, w float64) bool {
		fmt.Printf("  %s -> %s (%g)\n", g.Label(p), g.Label(to), w)
		return true
	})
	// Output:
	// 3 nodes, 4 directed edges, epoch 0
	// out-degree(paper:csr) = 2, out-weight = 3
	//   paper:csr -> term:sparse (1)
	//   paper:csr -> term:matrix (2)
}

// ExampleCommit stages a Delta against a snapshot and commits it into the
// next epoch; the base graph keeps serving unchanged.
func ExampleCommit() {
	b := graph.NewBuilder()
	a := b.AddNode(0, "a")
	bb := b.AddNode(0, "b")
	b.MustAddUndirectedEdge(a, bb, 1)
	base := b.MustBuild()

	d := graph.NewDelta(base)
	c := d.AddNode(0, "c")
	if err := d.SetUndirectedEdge(bb, c, 2); err != nil {
		panic(err)
	}
	if err := d.SetEdge(a, bb, 5); err != nil { // reweight a->b
		panic(err)
	}
	next, err := graph.Commit(base, d)
	if err != nil {
		panic(err)
	}

	fmt.Printf("base:  epoch %d, %d nodes, %d edges\n", base.Epoch(), base.NumNodes(), base.NumEdges())
	fmt.Printf("next:  epoch %d, %d nodes, %d edges\n", next.Epoch(), next.NumNodes(), next.NumEdges())
	w, _ := next.EdgeWeight(a, bb)
	wOld, _ := base.EdgeWeight(a, bb)
	fmt.Printf("a->b weight: %g (was %g)\n", w, wOld)
	// Output:
	// base:  epoch 0, 2 nodes, 2 edges
	// next:  epoch 1, 3 nodes, 4 edges
	// a->b weight: 5 (was 1)
}

// ExampleDelta_View previews staged mutations through the read-only overlay
// without committing them.
func ExampleDelta_View() {
	b := graph.NewBuilder()
	a := b.AddNode(0, "a")
	c := b.AddNode(0, "b")
	b.MustAddEdge(a, c, 1)
	base := b.MustBuild()

	d := graph.NewDelta(base)
	if err := d.RemoveEdge(a, c); err != nil {
		panic(err)
	}
	overlay := d.View()
	fmt.Printf("base out-degree(a)=%d, overlay out-degree(a)=%d\n",
		base.OutDegree(a), overlay.OutDegree(a))
	// Output:
	// base out-degree(a)=1, overlay out-degree(a)=0
}
