package graph

// Rows is the row-streaming access pattern of the online top-K searcher: the
// exact set of reads bca.Flat and bounds.FFlat/TFlat perform against a graph,
// expressed per row instead of as whole CSR arrays. A local CSRView satisfies
// it trivially; the point of the interface is the remote implementation
// (internal/rowserve.Session), which serves OutRow/InRow from a row cache
// filled by batched worker RPCs while OutSum/OutDegree come from small dense
// per-node arrays assembled once at connect time. That split mirrors the
// paper's AP/GP architecture: the searcher's working set is O(rows touched),
// never the full adjacency.
//
// Implementations may panic with *RowFetchError when a row cannot be
// materialized (the searcher has no error channel on its row reads);
// topk.TopKRows converts that panic back into an error.
type Rows interface {
	// NumNodes returns the number of nodes; node IDs are in [0, NumNodes).
	NumNodes() int
	// OutDegree returns the number of out-edges of v.
	OutDegree(v NodeID) int
	// OutSum returns the total out-weight of v.
	OutSum(v NodeID) float64
	// OutRow returns the out-edge targets and weights of v. The slices are
	// read-only and must stay valid while the caller keeps issuing calls on
	// the provider: the searcher's expansion waves iterate one row while
	// fetching the rows of its neighbors (see bounds.TFlat), so a provider
	// cannot serve every row from one reused buffer. CSR-backed providers
	// return slices of the underlying arrays; rowserve pins cached rows;
	// graph.Packed sessions cache each decoded row for the session lifetime.
	OutRow(v NodeID) (cols []NodeID, weights []float64)
	// InRow returns the in-edge sources and weights of v, same contract.
	InRow(v NodeID) (cols []NodeID, weights []float64)
}

// RowPrefetcher is optionally implemented by a Rows provider that can
// materialize many rows in one round trip. The searcher hands it the frontier
// of each expansion wave before streaming the rows one by one, so a remote
// provider coalesces the wave's misses into one RPC per stripe. Prefetch is
// advisory: duplicates and already-cached nodes are fine, and the provider
// may satisfy the hint partially.
type RowPrefetcher interface {
	Prefetch(nodes []NodeID)
}

// RowFetchError carries a row-fetch failure across the searcher's panic
// boundary: remote Rows implementations panic with *RowFetchError after
// exhausting retries, and topk.TopKRows recovers it into an ordinary error
// (anything else keeps propagating). Err retains the transport
// classification, so errors.As / distributed.IsTransient still work on it.
type RowFetchError struct{ Err error }

func (e *RowFetchError) Error() string { return e.Err.Error() }

func (e *RowFetchError) Unwrap() error { return e.Err }
