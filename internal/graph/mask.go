package graph

// EdgeKey identifies a directed edge by its endpoints.
type EdgeKey struct {
	From NodeID
	To   NodeID
}

// MaskedView wraps a View and hides a set of directed edges. It is used by the
// evaluation tasks to remove the direct edges between a query node and its
// ground-truth nodes without copying the underlying graph.
//
// Hiding an edge changes the out- and in-weight sums of the affected nodes;
// MaskedView adjusts those sums so that transition probabilities over the
// remaining edges renormalize correctly.
type MaskedView struct {
	base    View
	hidden  map[EdgeKey]bool
	outLoss map[NodeID]float64
	inLoss  map[NodeID]float64
	outDrop map[NodeID]int
	inDrop  map[NodeID]int
}

// NewMaskedView returns a view of base with the given directed edges hidden.
// Edges that do not exist in base are ignored. To hide an undirected edge,
// pass both directions.
func NewMaskedView(base View, hide []EdgeKey) *MaskedView {
	mv := &MaskedView{
		base:    base,
		hidden:  make(map[EdgeKey]bool, len(hide)),
		outLoss: make(map[NodeID]float64),
		inLoss:  make(map[NodeID]float64),
		outDrop: make(map[NodeID]int),
		inDrop:  make(map[NodeID]int),
	}
	for _, k := range hide {
		if mv.hidden[k] {
			continue
		}
		w, ok := edgeWeightOn(base, k.From, k.To)
		if !ok {
			continue
		}
		mv.hidden[k] = true
		mv.outLoss[k.From] += w
		mv.inLoss[k.To] += w
		mv.outDrop[k.From]++
		mv.inDrop[k.To]++
	}
	return mv
}

func edgeWeightOn(v View, from, to NodeID) (float64, bool) {
	w, found := 0.0, false
	v.EachOut(from, func(t NodeID, ew float64) bool {
		if t == to {
			w, found = ew, true
			return false
		}
		return true
	})
	return w, found
}

// NumNodes implements View.
func (m *MaskedView) NumNodes() int { return m.base.NumNodes() }

// OutDegree implements View.
func (m *MaskedView) OutDegree(v NodeID) int { return m.base.OutDegree(v) - m.outDrop[v] }

// InDegree implements View.
func (m *MaskedView) InDegree(v NodeID) int { return m.base.InDegree(v) - m.inDrop[v] }

// OutWeightSum implements View.
func (m *MaskedView) OutWeightSum(v NodeID) float64 {
	s := m.base.OutWeightSum(v) - m.outLoss[v]
	if s < 0 {
		return 0
	}
	return s
}

// InWeightSum implements View.
func (m *MaskedView) InWeightSum(v NodeID) float64 {
	s := m.base.InWeightSum(v) - m.inLoss[v]
	if s < 0 {
		return 0
	}
	return s
}

// EachOut implements View, skipping hidden edges.
func (m *MaskedView) EachOut(v NodeID, fn func(to NodeID, w float64) bool) {
	m.base.EachOut(v, func(to NodeID, w float64) bool {
		if m.hidden[EdgeKey{v, to}] {
			return true
		}
		return fn(to, w)
	})
}

// EachIn implements View, skipping hidden edges.
func (m *MaskedView) EachIn(v NodeID, fn func(from NodeID, w float64) bool) {
	m.base.EachIn(v, func(from NodeID, w float64) bool {
		if m.hidden[EdgeKey{from, v}] {
			return true
		}
		return fn(from, w)
	})
}

// HiddenCount returns the number of directed edges hidden by this view.
func (m *MaskedView) HiddenCount() int { return len(m.hidden) }
