package graph

import (
	"bytes"
	"hash/crc32"
	"math"
	"reflect"
	"testing"
)

func crc32Of(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// deltaBase builds the 6-node typed base graph the delta tests mutate.
func deltaBase(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	b.RegisterType(1, "paper")
	b.RegisterType(2, "author")
	p0 := b.AddNode(1, "p0")
	p1 := b.AddNode(1, "p1")
	p2 := b.AddNode(1, "p2")
	a0 := b.AddNode(2, "a0")
	a1 := b.AddNode(2, "a1")
	a2 := b.AddNode(2, "a2")
	b.MustAddUndirectedEdge(p0, a0, 1)
	b.MustAddUndirectedEdge(p0, a1, 2)
	b.MustAddUndirectedEdge(p1, a1, 1)
	b.MustAddUndirectedEdge(p2, a2, 3)
	b.MustAddEdge(p0, p1, 0.5)
	b.MustAddEdge(p1, p2, 0.5)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// requireSameCSR asserts that two graphs have bit-identical adjacency arrays.
func requireSameCSR(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("size mismatch: got %d nodes %d edges, want %d nodes %d edges",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	pairs := []struct {
		name      string
		got, want CSR
	}{{"out", got.out, want.out}, {"in", got.in, want.in}}
	for _, p := range pairs {
		if !reflect.DeepEqual(p.got.RowPtr, p.want.RowPtr) {
			t.Fatalf("%s RowPtr mismatch:\n got  %v\n want %v", p.name, p.got.RowPtr, p.want.RowPtr)
		}
		if !reflect.DeepEqual(p.got.Col, p.want.Col) {
			t.Fatalf("%s Col mismatch:\n got  %v\n want %v", p.name, p.got.Col, p.want.Col)
		}
		for i := range p.want.Weight {
			if math.Float64bits(p.got.Weight[i]) != math.Float64bits(p.want.Weight[i]) {
				t.Fatalf("%s Weight[%d]: got %v want %v", p.name, i, p.got.Weight[i], p.want.Weight[i])
			}
		}
		for v := range p.want.Sum {
			if math.Float64bits(p.got.Sum[v]) != math.Float64bits(p.want.Sum[v]) {
				t.Fatalf("%s Sum[%d]: got %v want %v", p.name, v, p.got.Sum[v], p.want.Sum[v])
			}
		}
	}
}

func TestCommitMatchesFromScratchBuild(t *testing.T) {
	g := deltaBase(t)
	d := NewDelta(g)

	// Every mutation class at once: a new node wired in, a reweight, a
	// directed removal, an undirected removal, and a node isolation.
	pNew := d.AddNode(1, "p3")
	if pNew != NodeID(g.NumNodes()) {
		t.Fatalf("AddNode assigned %d, want %d", pNew, g.NumNodes())
	}
	if err := d.SetUndirectedEdge(pNew, d.NodeByLabel("a1"), 2.5); err != nil {
		t.Fatal(err)
	}
	if err := d.SetEdge(d.NodeByLabel("p2"), pNew, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := d.SetEdge(d.NodeByLabel("p0"), d.NodeByLabel("a0"), 4); err != nil { // reweight
		t.Fatal(err)
	}
	if err := d.RemoveEdge(d.NodeByLabel("p0"), d.NodeByLabel("p1")); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveUndirectedEdge(d.NodeByLabel("p1"), d.NodeByLabel("a1")); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveNode(d.NodeByLabel("a2")); err != nil {
		t.Fatal(err)
	}

	got, err := Commit(g, d)
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("committed graph invalid: %v", err)
	}
	if got.Epoch() != g.Epoch()+1 {
		t.Fatalf("epoch: got %d, want %d", got.Epoch(), g.Epoch()+1)
	}

	// The equivalent graph built from scratch: same nodes (a2 still present,
	// isolated), surviving edges only.
	b := NewBuilder()
	b.RegisterType(1, "paper")
	b.RegisterType(2, "author")
	p0 := b.AddNode(1, "p0")
	p1 := b.AddNode(1, "p1")
	p2 := b.AddNode(1, "p2")
	a0 := b.AddNode(2, "a0")
	a1 := b.AddNode(2, "a1")
	b.AddNode(2, "a2")
	p3 := b.AddNode(1, "p3")
	b.MustAddEdge(p0, a0, 4)
	b.MustAddEdge(a0, p0, 1)
	b.MustAddUndirectedEdge(p0, a1, 2)
	b.MustAddEdge(p1, p2, 0.5)
	b.MustAddUndirectedEdge(p3, a1, 2.5)
	b.MustAddEdge(p2, p3, 1.5)
	want := b.MustBuild()

	requireSameCSR(t, got, want)
	for v := 0; v < want.NumNodes(); v++ {
		if got.Label(NodeID(v)) != want.Label(NodeID(v)) || got.Type(NodeID(v)) != want.Type(NodeID(v)) {
			t.Fatalf("node %d metadata mismatch: %q/%d vs %q/%d",
				v, got.Label(NodeID(v)), got.Type(NodeID(v)), want.Label(NodeID(v)), want.Type(NodeID(v)))
		}
	}
	if got.NodeByLabel("p3") != p3 {
		t.Fatalf("label index not extended: p3 -> %d", got.NodeByLabel("p3"))
	}

	// Same adjacency, different epoch: the fingerprints must differ (the
	// epoch is stamped in), while the epoch-less content matches.
	if GraphFingerprint(got) == GraphFingerprint(want) {
		t.Fatalf("fingerprint did not change with the epoch")
	}
}

func TestCommitEmptyDeltaBumpsEpochOnly(t *testing.T) {
	g := deltaBase(t)
	d := NewDelta(g)
	if !d.Empty() {
		t.Fatal("fresh delta not empty")
	}
	ng, err := Commit(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if ng.Epoch() != 1 {
		t.Fatalf("epoch: got %d, want 1", ng.Epoch())
	}
	requireSameCSR(t, ng, g)
	if GraphFingerprint(ng) == GraphFingerprint(g) {
		t.Fatal("empty commit must still change the fingerprint (epoch stamp)")
	}
}

func TestCommitRefusesForeignBase(t *testing.T) {
	g := deltaBase(t)
	other := deltaBase(t)
	d := NewDelta(g)
	if _, err := Commit(other, d); err == nil {
		t.Fatal("Commit accepted a delta staged against a different snapshot")
	}
	if _, err := Commit(g, nil); err == nil {
		t.Fatal("Commit accepted a nil delta")
	}
}

func TestDeltaStagingSemantics(t *testing.T) {
	g := deltaBase(t)
	p0, p1, a0 := g.NodeByLabel("p0"), g.NodeByLabel("p1"), g.NodeByLabel("a0")

	d := NewDelta(g)
	if err := d.SetEdge(p0, p0, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := d.SetEdge(p0, p1, math.Inf(1)); err == nil {
		t.Fatal("infinite weight accepted")
	}
	if err := d.SetEdge(p0, p1, -1); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := d.SetEdge(p0, NodeID(99), 1); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if err := d.RemoveEdge(p1, a0); err == nil {
		t.Fatal("removal of a nonexistent edge accepted")
	}

	// Remove-then-set re-adds; set-then-remove of a staged addition cancels.
	if err := d.RemoveEdge(p0, p1); err != nil {
		t.Fatal(err)
	}
	if err := d.SetEdge(p0, p1, 9); err != nil {
		t.Fatal(err)
	}
	nn := d.AddNode(Untyped, "x")
	if err := d.SetEdge(p0, nn, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(p0, nn); err != nil {
		t.Fatal(err)
	}
	ng, err := Commit(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := ng.EdgeWeight(p0, p1); !ok || w != 9 {
		t.Fatalf("p0->p1 after remove-then-set: %v %v, want 9 true", w, ok)
	}
	if ng.HasEdge(p0, nn) {
		t.Fatal("cancelled staged edge committed")
	}

	// AddNode is label-idempotent against both the base and the batch.
	d2 := NewDelta(g)
	if id := d2.AddNode(1, "p0"); id != p0 {
		t.Fatalf("AddNode(existing label) = %d, want %d", id, p0)
	}
	y1 := d2.AddNode(1, "y")
	if y2 := d2.AddNode(2, "y"); y2 != y1 {
		t.Fatalf("staged duplicate label: %d vs %d", y2, y1)
	}
}

func TestRemoveNodeIsolatesAndCanReattach(t *testing.T) {
	g := deltaBase(t)
	a1 := g.NodeByLabel("a1")
	p0 := g.NodeByLabel("p0")

	d := NewDelta(g)
	if err := d.RemoveNode(a1); err != nil {
		t.Fatal(err)
	}
	ng, err := Commit(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if ng.OutDegree(a1) != 0 || ng.InDegree(a1) != 0 {
		t.Fatalf("removed node still has edges: out=%d in=%d", ng.OutDegree(a1), ng.InDegree(a1))
	}
	if ng.Label(a1) != "a1" || ng.NodeByLabel("a1") != a1 {
		t.Fatal("removed node lost its identity")
	}

	// SetEdge after RemoveNode re-attaches.
	d2 := NewDelta(g)
	if err := d2.RemoveNode(a1); err != nil {
		t.Fatal(err)
	}
	if err := d2.SetEdge(p0, a1, 7); err != nil {
		t.Fatal(err)
	}
	ng2, err := Commit(g, d2)
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := ng2.EdgeWeight(p0, a1); !ok || w != 7 {
		t.Fatalf("re-attached edge: %v %v, want 7 true", w, ok)
	}
	if ng2.InDegree(a1) != 1 || ng2.OutDegree(a1) != 0 {
		t.Fatalf("re-attached node degrees: in=%d out=%d, want 1/0", ng2.InDegree(a1), ng2.OutDegree(a1))
	}
}

// TestDeltaViewMatchesCommit pins the overlay against the committed graph:
// every row the overlay serves (both directions, degrees, weight sums) must
// equal the committed CSR, and the overlay must be a snapshot (later staging
// invisible).
func TestDeltaViewMatchesCommit(t *testing.T) {
	g := deltaBase(t)
	d := NewDelta(g)
	pNew := d.AddNode(1, "p3")
	if err := d.SetUndirectedEdge(pNew, d.NodeByLabel("a0"), 2); err != nil {
		t.Fatal(err)
	}
	if err := d.SetEdge(d.NodeByLabel("p0"), d.NodeByLabel("a0"), 4); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveNode(d.NodeByLabel("a2")); err != nil {
		t.Fatal(err)
	}
	ov := d.View()
	committed, err := Commit(g, d)
	if err != nil {
		t.Fatal(err)
	}

	if ov.NumNodes() != committed.NumNodes() {
		t.Fatalf("overlay nodes %d, committed %d", ov.NumNodes(), committed.NumNodes())
	}
	if ov.Epoch() != committed.Epoch() {
		t.Fatalf("overlay epoch %d, committed %d", ov.Epoch(), committed.Epoch())
	}
	flat := Compact(ov)
	requireViewsEqual(t, flat, committed)
	if ov.Type(pNew) != 1 || ov.Type(0) != committed.Type(0) {
		t.Fatal("overlay Type mismatch")
	}

	// The overlay is a snapshot: staging after View() must not leak in.
	if err := d.RemoveNode(d.NodeByLabel("p0")); err != nil {
		t.Fatal(err)
	}
	if ov.OutDegree(d.NodeByLabel("p0")) == 0 {
		t.Fatal("overlay reflected staging that happened after View()")
	}
}

// requireViewsEqual compares two views' full adjacency (rows, weights,
// degrees, sums) node for node.
func requireViewsEqual(t *testing.T, got, want View) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("node counts differ: %d vs %d", got.NumNodes(), want.NumNodes())
	}
	type edge struct {
		to NodeID
		w  float64
	}
	collect := func(v View, u NodeID, out bool) []edge {
		var es []edge
		visit := func(o NodeID, w float64) bool { es = append(es, edge{o, w}); return true }
		if out {
			v.EachOut(u, visit)
		} else {
			v.EachIn(u, visit)
		}
		return es
	}
	for u := 0; u < want.NumNodes(); u++ {
		for _, dir := range []bool{true, false} {
			g, w := collect(got, NodeID(u), dir), collect(want, NodeID(u), dir)
			if !reflect.DeepEqual(g, w) {
				t.Fatalf("node %d (out=%v): got %v want %v", u, dir, g, w)
			}
		}
		if got.OutWeightSum(NodeID(u)) != want.OutWeightSum(NodeID(u)) ||
			got.InWeightSum(NodeID(u)) != want.InWeightSum(NodeID(u)) {
			t.Fatalf("node %d weight sums differ", u)
		}
		if got.OutDegree(NodeID(u)) != want.OutDegree(NodeID(u)) ||
			got.InDegree(NodeID(u)) != want.InDegree(NodeID(u)) {
			t.Fatalf("node %d degrees differ", u)
		}
	}
}

func TestStripeContentFingerprintStability(t *testing.T) {
	g := deltaBase(t)

	// Touch only p0<->a0: stripes owning neither endpoint's rows keep their
	// content fingerprint across the commit, the others change.
	d := NewDelta(g)
	if err := d.SetEdge(g.NodeByLabel("p0"), g.NodeByLabel("a0"), 4); err != nil {
		t.Fatal(err)
	}
	ng, err := Commit(g, d)
	if err != nil {
		t.Fatal(err)
	}

	const stripes = 3 // p0=node0 (stripe 0), a0=node3 (stripe 0)
	changed := 0
	for i := 0; i < stripes; i++ {
		before, err := BuildStripeData(g, i, stripes)
		if err != nil {
			t.Fatal(err)
		}
		after, err := BuildStripeData(ng, i, stripes)
		if err != nil {
			t.Fatal(err)
		}
		if before.Graph == after.Graph {
			t.Fatalf("stripe %d: graph fingerprint did not roll with the epoch", i)
		}
		if before.Epoch != 0 || after.Epoch != 1 {
			t.Fatalf("stripe %d: epochs %d -> %d, want 0 -> 1", i, before.Epoch, after.Epoch)
		}
		if before.ContentFingerprint() != after.ContentFingerprint() {
			changed++
		}
	}
	// The reweighted edge touches out-rows of p0 (stripe 0) and in-rows of a0
	// (stripe 0, node 3): only stripe 0's content may change.
	if changed != 1 {
		t.Fatalf("%d stripe contents changed, want exactly 1", changed)
	}
}

// TestEpochZeroFingerprintIsLegacyCompatible pins that epoch 0 hashes
// exactly as the pre-epoch formula: an unversioned view (Compact) of an
// epoch-0 graph must fingerprint identically, so stripes cut before epochs
// existed remain valid against the epoch-0 graphs they were cut from.
func TestEpochZeroFingerprintIsLegacyCompatible(t *testing.T) {
	g := deltaBase(t)
	if got, want := GraphFingerprint(Compact(g)), GraphFingerprint(g); got != want {
		t.Fatalf("epoch-0 fingerprint diverged from the unversioned formula: %08x vs %08x", got, want)
	}
	ng, err := Commit(g, NewDelta(g))
	if err != nil {
		t.Fatal(err)
	}
	if GraphFingerprint(ng) == GraphFingerprint(g) {
		t.Fatal("epoch 1 must fingerprint differently from epoch 0")
	}
	// The cache must not leak across snapshots: recomputing yields the same
	// value (and the committed graph's cache is its own).
	if GraphFingerprint(g) != computeFingerprint(g) || GraphFingerprint(ng) != computeFingerprint(ng) {
		t.Fatal("cached fingerprint differs from a fresh computation")
	}
}

func TestStripeCodecCarriesEpochAndAcceptsV1(t *testing.T) {
	g := deltaBase(t)
	ng, err := Commit(g, NewDelta(g))
	if err != nil {
		t.Fatal(err)
	}
	d, err := BuildStripeData(ng, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeStripe(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStripe(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 1 || got.Graph != d.Graph || got.ContentFingerprint() != d.ContentFingerprint() {
		t.Fatalf("round trip lost identity: epoch=%d graph=%08x", got.Epoch, got.Graph)
	}

	// A genuine version-2 stream (flat CSR blocks) must still decode now that
	// EncodeStripe writes version 3.
	var bufV2 bytes.Buffer
	if err := encodeStripeVersion(&bufV2, d, 2); err != nil {
		t.Fatal(err)
	}
	gotV2, err := DecodeStripe(bytes.NewReader(bufV2.Bytes()))
	if err != nil {
		t.Fatalf("v2 decode: %v", err)
	}
	if gotV2.Epoch != 1 || gotV2.ContentFingerprint() != d.ContentFingerprint() {
		t.Fatal("v2 decode changed the payload")
	}

	// A hand-built version-1 stream (no epoch field, flat blocks) must still
	// decode, as epoch zero. Reuse the v2 encoding and splice the epoch field
	// out.
	v2 := bufV2.Bytes()
	v1 := make([]byte, 0, len(v2)-8)
	v1 = append(v1, v2[:4]...)           // magic
	v1 = append(v1, 1, 0)                // version 1
	v1 = append(v1, v2[6:20]...)         // reserved, index, count, graph
	v1 = append(v1, v2[28:len(v2)-4]...) // skip epoch, keep payload, drop crc
	crc := crc32Of(v1)                   // recompute the trailing checksum
	v1 = append(v1, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
	gotV1, err := DecodeStripe(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	if gotV1.Epoch != 0 {
		t.Fatalf("v1 epoch: got %d, want 0", gotV1.Epoch)
	}
	if gotV1.ContentFingerprint() != d.ContentFingerprint() {
		t.Fatal("v1 decode changed the payload")
	}
}
