// This file defines the core Graph structure and View interfaces; the
// package documentation lives in doc.go.
package graph

import (
	"fmt"
	"math"
	"sync"
)

// NodeID identifies a node in a Graph. IDs are dense indices in [0, NumNodes).
type NodeID int32

// NoNode is returned by lookups that fail.
const NoNode NodeID = -1

// Type is a small integer node type. Types are registered on the Builder and
// carried over to the Graph; the zero value is "untyped".
type Type uint8

// Untyped is the default node type.
const Untyped Type = 0

// View is the read interface consumed by walk engines, bounds frameworks and
// top-K algorithms. *Graph implements View; MaskedView wraps another View and
// hides a set of edges.
type View interface {
	// NumNodes returns the number of nodes. Node IDs are 0..NumNodes-1.
	NumNodes() int
	// OutDegree returns the number of outgoing edges of v.
	OutDegree(v NodeID) int
	// InDegree returns the number of incoming edges of v.
	InDegree(v NodeID) int
	// OutWeightSum returns the total weight of v's outgoing edges.
	OutWeightSum(v NodeID) float64
	// InWeightSum returns the total weight of v's incoming edges.
	InWeightSum(v NodeID) float64
	// EachOut calls fn for every outgoing edge v->to with weight w, until fn
	// returns false.
	EachOut(v NodeID, fn func(to NodeID, w float64) bool)
	// EachIn calls fn for every incoming edge from->v with weight w, until fn
	// returns false.
	EachIn(v NodeID, fn func(from NodeID, w float64) bool)
}

// CSR is one adjacency direction in compressed-sparse-row form: the neighbors
// of row v are Col[RowPtr[v]:RowPtr[v+1]] with matching Weight entries, and
// Sum[v] caches the total edge weight of the row. The slices alias the owning
// view's storage and must be treated as read-only.
type CSR struct {
	RowPtr []int64
	Col    []NodeID
	Weight []float64
	Sum    []float64
}

// Row returns the neighbor and weight slices of row v, backed by the CSR
// arrays.
func (c CSR) Row(v NodeID) ([]NodeID, []float64) {
	lo, hi := c.RowPtr[v], c.RowPtr[v+1]
	return c.Col[lo:hi], c.Weight[lo:hi]
}

// Degree returns the number of entries in row v.
func (c CSR) Degree(v NodeID) int {
	return int(c.RowPtr[v+1] - c.RowPtr[v])
}

// CSRView is implemented by views that expose their adjacency as flat CSR
// arrays. The parallel walk kernels type-assert for it and fall back to the
// generic View iteration when a view (masked, tracking, remote) cannot provide
// it. Implementations must return immutable arrays: the kernels read them
// concurrently from multiple goroutines.
type CSRView interface {
	View
	// OutCSR returns the forward adjacency: row v lists the edges v->to.
	OutCSR() CSR
	// InCSR returns the transposed adjacency used by reverse walks: row v
	// lists the edges from->v.
	InCSR() CSR
}

// Graph is an immutable CSR graph. Construct with a Builder, or derive a new
// snapshot from an existing Graph with Commit. Mutation never happens in
// place: Commit merges a Delta into a fresh Graph one epoch later, so every
// *Graph ever handed out keeps serving its own consistent adjacency.
type Graph struct {
	numNodes int
	numEdges int
	epoch    uint64

	// fp lazily caches GraphFingerprint: the CSR arrays are immutable, and
	// serving endpoints poll the fingerprint far more often than it changes.
	fpOnce sync.Once
	fp     uint32

	types  []Type
	labels []string

	// Forward adjacency and its transposed copy, so forward walks (F-Rank),
	// backward walks (T-Rank) and border-node expansions all stream flat
	// arrays.
	out CSR
	in  CSR

	typeNames map[Type]string
	byLabel   map[string]NodeID
}

// OutCSR implements CSRView.
func (g *Graph) OutCSR() CSR { return g.out }

// InCSR implements CSRView.
func (g *Graph) InCSR() CSR { return g.in }

// Epoch returns the graph's snapshot version: zero for a freshly built graph,
// incremented by every Commit. The epoch is stamped into GraphFingerprint, so
// two snapshots of an evolving graph never alias even when a sequence of
// commits happens to restore an earlier adjacency.
func (g *Graph) Epoch() uint64 { return g.epoch }

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return g.numNodes }

// NumEdges returns the number of directed edges in the graph.
func (g *Graph) NumEdges() int { return g.numEdges }

// Type returns the type of node v.
func (g *Graph) Type(v NodeID) Type { return g.types[v] }

// Label returns the label of node v.
func (g *Graph) Label(v NodeID) string { return g.labels[v] }

// TypeName returns the registered human-readable name of a node type, or a
// numeric fallback when the type was never named.
func (g *Graph) TypeName(t Type) string {
	if name, ok := g.typeNames[t]; ok {
		return name
	}
	return fmt.Sprintf("type-%d", t)
}

// NodeByLabel returns the node with the given label, or NoNode.
func (g *Graph) NodeByLabel(label string) NodeID {
	if v, ok := g.byLabel[label]; ok {
		return v
	}
	return NoNode
}

// NodesOfType returns all node IDs with the given type, in increasing order.
func (g *Graph) NodesOfType(t Type) []NodeID {
	var out []NodeID
	for v := 0; v < g.numNodes; v++ {
		if g.types[v] == t {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// CountOfType returns the number of nodes with the given type.
func (g *Graph) CountOfType(t Type) int {
	n := 0
	for v := 0; v < g.numNodes; v++ {
		if g.types[v] == t {
			n++
		}
	}
	return n
}

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v NodeID) int { return g.out.Degree(v) }

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v NodeID) int { return g.in.Degree(v) }

// Degree returns the total (in + out) degree of v.
func (g *Graph) Degree(v NodeID) int {
	return g.OutDegree(v) + g.InDegree(v)
}

// OutWeightSum returns the total outgoing edge weight of v.
func (g *Graph) OutWeightSum(v NodeID) float64 { return g.out.Sum[v] }

// InWeightSum returns the total incoming edge weight of v.
func (g *Graph) InWeightSum(v NodeID) float64 { return g.in.Sum[v] }

// EachOut iterates v's outgoing edges.
func (g *Graph) EachOut(v NodeID, fn func(to NodeID, w float64) bool) {
	lo, hi := g.out.RowPtr[v], g.out.RowPtr[v+1]
	for i := lo; i < hi; i++ {
		if !fn(g.out.Col[i], g.out.Weight[i]) {
			return
		}
	}
}

// EachIn iterates v's incoming edges.
func (g *Graph) EachIn(v NodeID, fn func(from NodeID, w float64) bool) {
	lo, hi := g.in.RowPtr[v], g.in.RowPtr[v+1]
	for i := lo; i < hi; i++ {
		if !fn(g.in.Col[i], g.in.Weight[i]) {
			return
		}
	}
}

// OutNeighbors returns the out-neighbor IDs and weights of v as slices backed
// by the graph's internal arrays; callers must not modify them.
func (g *Graph) OutNeighbors(v NodeID) ([]NodeID, []float64) {
	return g.out.Row(v)
}

// InNeighbors returns the in-neighbor IDs and weights of v as slices backed by
// the graph's internal arrays; callers must not modify them.
func (g *Graph) InNeighbors(v NodeID) ([]NodeID, []float64) {
	return g.in.Row(v)
}

// EdgeWeight returns the weight of the directed edge from->to and whether it
// exists. If parallel edges were merged at build time there is at most one.
func (g *Graph) EdgeWeight(from, to NodeID) (float64, bool) {
	w := 0.0
	found := false
	g.EachOut(from, func(t NodeID, ew float64) bool {
		if t == to {
			w = ew
			found = true
			return false
		}
		return true
	})
	return w, found
}

// HasEdge reports whether a directed edge from->to exists.
func (g *Graph) HasEdge(from, to NodeID) bool {
	_, ok := g.EdgeWeight(from, to)
	return ok
}

// TransitionProb returns the one-step random-walk transition probability
// M[from][to] = w(from,to) / OutWeightSum(from). It is zero when the edge does
// not exist or when from has no outgoing weight.
func (g *Graph) TransitionProb(from, to NodeID) float64 {
	return TransitionProb(g, from, to)
}

// AverageDegree returns the average out-degree of the graph.
func (g *Graph) AverageDegree() float64 {
	if g.numNodes == 0 {
		return 0
	}
	return float64(g.numEdges) / float64(g.numNodes)
}

// SizeBytes returns an estimate of the in-memory size of the CSR structure
// (adjacency arrays and per-node metadata; label strings excluded). It is used
// by the scalability experiments to report snapshot sizes.
func (g *Graph) SizeBytes() int64 {
	perNode := int64(1 + 8 + 8 + 8 + 8 + 8) // type + 2 offsets + 2 weight sums (approx)
	perEdge := int64(4+8) * 2               // target + weight, both directions
	return int64(g.numNodes)*perNode + int64(g.numEdges)*perEdge
}

// Validate checks internal CSR invariants. It is primarily used in tests.
func (g *Graph) Validate() error {
	if len(g.out.RowPtr) != g.numNodes+1 || len(g.in.RowPtr) != g.numNodes+1 {
		return fmt.Errorf("graph: offset arrays have wrong length")
	}
	if g.out.RowPtr[g.numNodes] != int64(len(g.out.Col)) {
		return fmt.Errorf("graph: out offsets do not cover edge array")
	}
	if g.in.RowPtr[g.numNodes] != int64(len(g.in.Col)) {
		return fmt.Errorf("graph: in offsets do not cover edge array")
	}
	if len(g.out.Col) != len(g.in.Col) {
		return fmt.Errorf("graph: out edge count %d != in edge count %d", len(g.out.Col), len(g.in.Col))
	}
	for v := 0; v < g.numNodes; v++ {
		sum := 0.0
		g.EachOut(NodeID(v), func(to NodeID, w float64) bool {
			if to < 0 || int(to) >= g.numNodes {
				sum = math.NaN()
				return false
			}
			if w <= 0 {
				sum = math.NaN()
				return false
			}
			sum += w
			return true
		})
		if math.IsNaN(sum) {
			return fmt.Errorf("graph: node %d has an invalid outgoing edge", v)
		}
		if math.Abs(sum-g.out.Sum[v]) > 1e-9*(1+sum) {
			return fmt.Errorf("graph: node %d out weight sum mismatch: %g vs %g", v, sum, g.out.Sum[v])
		}
		sum = 0.0
		g.EachIn(NodeID(v), func(from NodeID, w float64) bool {
			sum += w
			return true
		})
		if math.Abs(sum-g.in.Sum[v]) > 1e-9*(1+sum) {
			return fmt.Errorf("graph: node %d in weight sum mismatch: %g vs %g", v, sum, g.in.Sum[v])
		}
	}
	return nil
}

// TransitionProb returns the one-step transition probability M[from][to] on an
// arbitrary View.
func TransitionProb(v View, from, to NodeID) float64 {
	sum := v.OutWeightSum(from)
	if sum <= 0 {
		return 0
	}
	p := 0.0
	v.EachOut(from, func(t NodeID, w float64) bool {
		if t == to {
			p = w / sum
			return false
		}
		return true
	})
	return p
}

// IsStronglyReachable reports whether every node in the view can reach node q
// and be reached from node q (a cheap proxy for irreducibility with respect to
// a query). It runs two BFS traversals.
func IsStronglyReachable(v View, q NodeID) bool {
	n := v.NumNodes()
	reachFwd := bfs(v, q, true)
	reachBwd := bfs(v, q, false)
	for i := 0; i < n; i++ {
		if !reachFwd[i] || !reachBwd[i] {
			return false
		}
	}
	return true
}

func bfs(v View, start NodeID, forward bool) []bool {
	n := v.NumNodes()
	seen := make([]bool, n)
	seen[start] = true
	queue := []NodeID{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		visit := func(next NodeID, _ float64) bool {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
			return true
		}
		if forward {
			v.EachOut(cur, visit)
		} else {
			v.EachIn(cur, visit)
		}
	}
	return seen
}
