package graph

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"reflect"
	"testing"
)

// stripeTestGraph builds a small typed graph with asymmetric degrees, a
// dangling node, and non-unit weights, so stripes exercise uneven rows.
func stripeTestGraph(t testing.TB) *Graph {
	b := NewBuilder()
	n := 11
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddNode(Untyped, "s:"+string(rune('a'+i)))
	}
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(ids[i], ids[(i+3)%n], float64(i%4)+0.5); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	for i := 0; i < n; i += 2 {
		if err := b.AddEdge(ids[i], ids[(i+1)%n], 2); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func encodeStripe(t testing.TB, d *StripeData) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeStripe(&buf, d); err != nil {
		t.Fatalf("EncodeStripe: %v", err)
	}
	return buf.Bytes()
}

func TestStripeCodecRoundTrip(t *testing.T) {
	g := stripeTestGraph(t)
	for _, count := range []int{1, 2, 3, 5, 16} {
		for index := 0; index < count; index++ {
			d, err := BuildStripeData(g, index, count)
			if err != nil {
				t.Fatalf("BuildStripeData(%d,%d): %v", index, count, err)
			}
			got, err := DecodeStripe(bytes.NewReader(encodeStripe(t, d)))
			if err != nil {
				t.Fatalf("DecodeStripe(%d,%d): %v", index, count, err)
			}
			if !reflect.DeepEqual(d, got) {
				t.Fatalf("stripe %d/%d changed across the codec:\nwant %+v\ngot  %+v", index, count, d, got)
			}
		}
	}
}

func TestStripeCodecFileRoundTrip(t *testing.T) {
	g := stripeTestGraph(t)
	d, err := BuildStripeData(g, 1, 3)
	if err != nil {
		t.Fatalf("BuildStripeData: %v", err)
	}
	path := filepath.Join(t.TempDir(), "stripe.bin")
	if err := WriteStripeFile(path, d); err != nil {
		t.Fatalf("WriteStripeFile: %v", err)
	}
	got, err := ReadStripeFile(path)
	if err != nil {
		t.Fatalf("ReadStripeFile: %v", err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatalf("stripe changed across the file round trip")
	}
}

func TestStripeDecodeTruncation(t *testing.T) {
	g := stripeTestGraph(t)
	d, err := BuildStripeData(g, 0, 2)
	if err != nil {
		t.Fatalf("BuildStripeData: %v", err)
	}
	enc := encodeStripe(t, d)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeStripe(bytes.NewReader(enc[:cut])); err == nil {
			t.Fatalf("decoding a %d/%d-byte prefix succeeded", cut, len(enc))
		}
	}
}

func TestStripeDecodeCorruption(t *testing.T) {
	g := stripeTestGraph(t)
	d, err := BuildStripeData(g, 1, 2)
	if err != nil {
		t.Fatalf("BuildStripeData: %v", err)
	}
	enc := encodeStripe(t, d)
	// Flip one bit of every byte in turn; the checksum (or, for the trailing
	// checksum bytes themselves, the comparison) must catch each.
	for i := 0; i < len(enc); i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, err := DecodeStripe(bytes.NewReader(bad)); err == nil {
			t.Fatalf("decoding with byte %d corrupted succeeded", i)
		}
	}
}

// TestStripeDecodeForgedLength verifies the bounded-chunk reader: a header
// claiming a multi-gigabyte array must fail on truncation without trying to
// allocate it.
func TestStripeDecodeForgedLength(t *testing.T) {
	g := stripeTestGraph(t)
	d, err := BuildStripeData(g, 0, 3)
	if err != nil {
		t.Fatalf("BuildStripeData: %v", err)
	}
	enc := encodeStripe(t, d)
	// The first array length (out RowPtr) sits right after the 32-byte header.
	bad := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint64(bad[32:], 1<<40)
	if _, err := DecodeStripe(bytes.NewReader(bad)); err == nil {
		t.Fatalf("decoding with a forged 2^40 array length succeeded")
	}
}

func TestStripeDecodeWrongMagicAndVersion(t *testing.T) {
	g := stripeTestGraph(t)
	d, err := BuildStripeData(g, 0, 1)
	if err != nil {
		t.Fatalf("BuildStripeData: %v", err)
	}
	enc := encodeStripe(t, d)

	bad := append([]byte(nil), enc...)
	copy(bad, "NOPE")
	if _, err := DecodeStripe(bytes.NewReader(bad)); err == nil {
		t.Fatalf("decoding with a wrong magic succeeded")
	}

	bad = append([]byte(nil), enc...)
	binary.LittleEndian.PutUint16(bad[4:], 99) // version field
	if _, err := DecodeStripe(bytes.NewReader(bad)); err == nil {
		t.Fatalf("decoding version 99 succeeded")
	}
}

func TestBuildStripeDataRejectsBadIndices(t *testing.T) {
	g := stripeTestGraph(t)
	for _, bad := range [][2]int{{0, 0}, {-1, 2}, {2, 2}, {0, -1}} {
		if _, err := BuildStripeData(g, bad[0], bad[1]); err == nil {
			t.Errorf("BuildStripeData(%d,%d) succeeded", bad[0], bad[1])
		}
	}
}

// FuzzDecodeStripe throws arbitrary bytes at the stripe decoder: it must
// never panic or over-allocate, and anything it accepts must be a valid
// stripe that survives a re-encode/decode round trip unchanged.
func FuzzDecodeStripe(f *testing.F) {
	g := stripeTestGraph(f)
	for _, count := range []int{1, 3} {
		for index := 0; index < count; index++ {
			d, err := BuildStripeData(g, index, count)
			if err != nil {
				f.Fatalf("BuildStripeData: %v", err)
			}
			enc := encodeStripe(f, d)
			f.Add(enc)
			f.Add(enc[:len(enc)/2])
		}
	}
	f.Add([]byte("RTS1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeStripe(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("decoded stripe fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := EncodeStripe(&buf, d); err != nil {
			t.Fatalf("re-encode of accepted stripe failed: %v", err)
		}
		d2, err := DecodeStripe(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of accepted stripe failed: %v", err)
		}
		if !reflect.DeepEqual(d, d2) {
			t.Fatalf("stripe changed across re-encode round trip")
		}
	})
}
