package topk

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"roundtriprank/internal/core"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
	"roundtriprank/internal/walk"
)

func TestOptionsValidation(t *testing.T) {
	toy := testgraphs.NewToy()
	q := walk.SingleNode(toy.T1)
	bad := []Options{
		{K: 0, Alpha: 0.25, Beta: 0.5},
		{K: 3, Epsilon: -1, Alpha: 0.25, Beta: 0.5},
		{K: 3, Alpha: 2, Beta: 0.5},
		{K: 3, Alpha: 0.25, Beta: -0.5},
		{K: 3, Alpha: 0.25, Beta: 0.5, Scheme: Scheme(99)},
	}
	for i, o := range bad {
		if _, err := TopK(context.Background(), toy.Graph, q, o); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
	if _, _, err := Naive(context.Background(), toy.Graph, q, Options{K: 0}); err == nil {
		t.Errorf("Naive with K=0 should error")
	}
	if _, err := TopK(context.Background(), toy.Graph, walk.Query{}, DefaultOptions()); err == nil {
		t.Errorf("empty query should error")
	}
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		Scheme2SBound: "2SBound",
		SchemeGS:      "G+S",
		SchemeGupta:   "Gupta",
		SchemeSarkar:  "Sarkar",
		Scheme(42):    "Scheme(42)",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("Scheme(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestNaiveTopVenueOnToy(t *testing.T) {
	toy := testgraphs.NewToy()
	ranked, scores, err := Naive(context.Background(), toy.Graph, walk.SingleNode(toy.T1), Options{K: 3, Alpha: 0.25, Beta: 0.5})
	if err != nil {
		t.Fatalf("Naive: %v", err)
	}
	if len(ranked) != 3 {
		t.Fatalf("Naive returned %d results, want 3", len(ranked))
	}
	if ranked[0].Node != toy.T1 {
		t.Errorf("self-proximity should rank the query first, got node %d", ranked[0].Node)
	}
	// Among the venues, v2 should rank highest (important and specific).
	if !(scores[toy.V2] > scores[toy.V1]) || !(scores[toy.V2] > scores[toy.V3]) {
		t.Errorf("v2 should outrank v1 and v3: %g %g %g", scores[toy.V1], scores[toy.V2], scores[toy.V3])
	}
}

func TestTopKMatchesNaiveOnToy(t *testing.T) {
	toy := testgraphs.NewToy()
	q := walk.SingleNode(toy.T1)
	for _, scheme := range []Scheme{Scheme2SBound, SchemeGS, SchemeGupta, SchemeSarkar} {
		opt := Options{K: 5, Epsilon: 1e-6, Alpha: 0.25, Beta: 0.5, Scheme: scheme, FExpansion: 3, TExpansion: 2}
		res, err := TopK(context.Background(), toy.Graph, q, opt)
		if err != nil {
			t.Fatalf("%v: TopK: %v", scheme, err)
		}
		if !res.Converged {
			t.Errorf("%v: should converge on the toy graph", scheme)
		}
		naive, _, err := Naive(context.Background(), toy.Graph, q, opt)
		if err != nil {
			t.Fatalf("Naive: %v", err)
		}
		if len(res.TopK) != len(naive) {
			t.Fatalf("%v: size mismatch %d vs %d", scheme, len(res.TopK), len(naive))
		}
		for i := range naive {
			if res.TopK[i].Node != naive[i].Node {
				t.Errorf("%v: rank %d node %d, naive has %d", scheme, i, res.TopK[i].Node, naive[i].Node)
			}
		}
		if res.FSeen == 0 || res.TSeen == 0 || res.RSeen == 0 {
			t.Errorf("%v: neighborhood sizes should be positive: %d %d %d", scheme, res.FSeen, res.TSeen, res.RSeen)
		}
		if res.Rounds <= 0 {
			t.Errorf("%v: rounds should be positive", scheme)
		}
	}
}

func TestTopKBetaExtremes(t *testing.T) {
	toy := testgraphs.NewToy()
	q := walk.SingleNode(toy.T1)
	for _, beta := range []float64{0, 0.25, 0.5, 0.75, 1} {
		opt := Options{K: 4, Epsilon: 1e-6, Alpha: 0.25, Beta: beta, FExpansion: 3, TExpansion: 2}
		res, err := TopK(context.Background(), toy.Graph, q, opt)
		if err != nil {
			t.Fatalf("beta=%g: %v", beta, err)
		}
		naive, _, err := Naive(context.Background(), toy.Graph, q, opt)
		if err != nil {
			t.Fatalf("beta=%g naive: %v", beta, err)
		}
		for i := range naive {
			if i < len(res.TopK) && res.TopK[i].Node != naive[i].Node {
				t.Errorf("beta=%g rank %d: %d vs naive %d", beta, i, res.TopK[i].Node, naive[i].Node)
			}
		}
	}
}

func TestTopKDisconnectedTarget(t *testing.T) {
	// Directed line: nothing can walk back to the query, so T-Rank is zero for
	// everything but the query and the combined score collapses to the query
	// alone; the algorithm must terminate (exhaustion) and not spin.
	g := testgraphs.Line(5)
	opt := Options{K: 3, Epsilon: 0.001, Alpha: 0.25, Beta: 0.5, MaxRounds: 1000}
	res, err := TopK(context.Background(), g, walk.SingleNode(0), opt)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(res.TopK) == 0 {
		t.Fatalf("should return at least the query node")
	}
	if res.TopK[0].Node != 0 {
		t.Errorf("query should rank first, got %d", res.TopK[0].Node)
	}
}

func TestTopKMaxRoundsCap(t *testing.T) {
	toy := testgraphs.NewToy()
	opt := Options{K: 5, Epsilon: 0, Alpha: 0.25, Beta: 0.5, MaxRounds: 1, FExpansion: 1, TExpansion: 1}
	res, err := TopK(context.Background(), toy.Graph, walk.SingleNode(toy.T1), opt)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1 (cap)", res.Rounds)
	}
}

// epsilonGuarantee checks the two guarantees of the ε-approximate top-K
// (Sect. V-A1): (a) no node whose exact score exceeds the K-th returned node's
// exact score by at least ε is missing; (b) no two returned nodes whose exact
// scores differ by at least ε are swapped.
func epsilonGuarantee(res *Result, exact []float64, eps float64, k int) bool {
	if len(res.TopK) == 0 {
		return false
	}
	inTop := make(map[graph.NodeID]bool, len(res.TopK))
	for _, r := range res.TopK {
		inTop[r.Node] = true
	}
	kth := res.TopK[len(res.TopK)-1].Node
	for v := range exact {
		node := graph.NodeID(v)
		if inTop[node] {
			continue
		}
		if exact[v] >= exact[kth]+eps {
			return false
		}
	}
	for i := 0; i < len(res.TopK); i++ {
		for j := i + 1; j < len(res.TopK); j++ {
			if exact[res.TopK[j].Node] >= exact[res.TopK[i].Node]+eps {
				return false
			}
		}
	}
	return true
}

func TestEpsilonGuaranteeOnToy(t *testing.T) {
	toy := testgraphs.NewToy()
	q := walk.SingleNode(toy.T1)
	for _, eps := range []float64{0.001, 0.01, 0.05} {
		opt := Options{K: 5, Epsilon: eps, Alpha: 0.25, Beta: 0.5, FExpansion: 2, TExpansion: 2}
		res, err := TopK(context.Background(), toy.Graph, q, opt)
		if err != nil {
			t.Fatalf("TopK: %v", err)
		}
		_, exact, err := Naive(context.Background(), toy.Graph, q, opt)
		if err != nil {
			t.Fatalf("Naive: %v", err)
		}
		if !epsilonGuarantee(res, exact, eps, opt.K) {
			t.Errorf("epsilon=%g: approximation guarantee violated", eps)
		}
	}
}

// Property: on random strongly connected graphs, 2SBound with slack ε meets
// the ε-approximation guarantee against the exact (naive) scores, for every
// scheme.
func TestQuickTopKApproximationGuarantee(t *testing.T) {
	schemes := []Scheme{Scheme2SBound, SchemeGS, SchemeGupta, SchemeSarkar}
	f := func(seed int64, kRaw, schemeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(30)
		b := graph.NewBuilder()
		ids := make([]graph.NodeID, n)
		for i := 0; i < n; i++ {
			ids[i] = b.AddNode(graph.Untyped, "n"+string(rune('0'+i%10))+string(rune('a'+i/10)))
		}
		for i := 0; i < n; i++ {
			b.MustAddEdge(ids[i], ids[(i+1)%n], 1)
		}
		extra := rng.Intn(4 * n)
		for i := 0; i < extra; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				v = (u + 1) % n
			}
			b.MustAddEdge(ids[u], ids[v], 0.25+rng.Float64())
		}
		g := b.MustBuild()
		q := walk.SingleNode(ids[rng.Intn(n)])
		k := 1 + int(kRaw%5)
		eps := 0.0005 + 0.01*rng.Float64()
		opt := Options{
			K:          k,
			Epsilon:    eps,
			Alpha:      0.25,
			Beta:       0.5,
			Scheme:     schemes[int(schemeRaw)%len(schemes)],
			FExpansion: 1 + rng.Intn(10),
			TExpansion: 1 + rng.Intn(4),
		}
		res, err := TopK(context.Background(), g, q, opt)
		if err != nil {
			return false
		}
		_, exact, err := Naive(context.Background(), g, q, opt)
		if err != nil {
			return false
		}
		return epsilonGuarantee(res, exact, eps, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: with a tiny slack the returned node set matches the exact top-K
// node set whenever the exact scores have no near-ties at the boundary.
func TestQuickTopKMatchesExactWithoutTies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(20)
		b := graph.NewBuilder()
		ids := make([]graph.NodeID, n)
		for i := 0; i < n; i++ {
			ids[i] = b.AddNode(graph.Untyped, "x"+string(rune('0'+i%10))+string(rune('a'+i/10)))
		}
		for i := 0; i < n; i++ {
			b.MustAddEdge(ids[i], ids[(i+1)%n], 0.5+rng.Float64())
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				v = (u + 1) % n
			}
			b.MustAddEdge(ids[u], ids[v], 0.25+rng.Float64())
		}
		g := b.MustBuild()
		q := walk.SingleNode(ids[rng.Intn(n)])
		k := 3
		eps := 1e-9
		opt := Options{K: k, Epsilon: eps, Alpha: 0.25, Beta: 0.5, FExpansion: 5, TExpansion: 3}
		res, err := TopK(context.Background(), g, q, opt)
		if err != nil {
			return false
		}
		naive, exact, err := Naive(context.Background(), g, q, opt)
		if err != nil {
			return false
		}
		// Skip graphs with a near-tie at the K-th boundary or within the top K,
		// where the exact set is not uniquely determined at this slack.
		all := core.Rank(exact, nil)
		for i := 0; i+1 < len(all) && i < k+1; i++ {
			if all[i].Score-all[i+1].Score < 1e-7 {
				return true
			}
		}
		if len(res.TopK) != len(naive) {
			return false
		}
		for i := range naive {
			if res.TopK[i].Node != naive[i].Node {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestKeepFilter verifies that the Keep option restricts the candidate set on
// both the online and the naive path and that the two agree at epsilon = 0
// (the paper's "find nodes of a target type" protocol).
func TestKeepFilter(t *testing.T) {
	toy := testgraphs.NewToy()
	keepVenue := func(v graph.NodeID) bool { return toy.Graph.Type(v) == testgraphs.TypeVenue }
	opt := Options{K: 3, Epsilon: 0, Alpha: 0.25, Beta: 0.5, Keep: keepVenue}

	res, err := TopK(context.Background(), toy.Graph, walk.SingleNode(toy.T1), opt)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	naive, _, err := Naive(context.Background(), toy.Graph, walk.SingleNode(toy.T1), opt)
	if err != nil {
		t.Fatalf("Naive: %v", err)
	}
	if len(res.TopK) != 3 || len(naive) != 3 {
		t.Fatalf("want 3 venues from both paths, got %d online, %d naive", len(res.TopK), len(naive))
	}
	for i := range naive {
		if res.TopK[i].Node != naive[i].Node {
			t.Errorf("rank %d: online %d != naive %d", i, res.TopK[i].Node, naive[i].Node)
		}
		if toy.Graph.Type(res.TopK[i].Node) != testgraphs.TypeVenue {
			t.Errorf("rank %d: node %d is not a venue", i, res.TopK[i].Node)
		}
	}
	if res.TopK[0].Node != toy.V2 {
		t.Errorf("top venue should be v2, got %d", res.TopK[0].Node)
	}
}

// TestTopKCancellation verifies that a cancelled context aborts the search
// before any expansion round runs.
func TestTopKCancellation(t *testing.T) {
	toy := testgraphs.NewToy()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TopK(ctx, toy.Graph, walk.SingleNode(toy.T1), DefaultOptions()); err != context.Canceled {
		t.Errorf("TopK with cancelled context: got %v, want context.Canceled", err)
	}
	if _, _, err := Naive(ctx, toy.Graph, walk.SingleNode(toy.T1), DefaultOptions()); err != context.Canceled {
		t.Errorf("Naive with cancelled context: got %v, want context.Canceled", err)
	}
}
