package topk

import (
	"context"
	"fmt"
	"math"
	"testing"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
	"roundtriprank/internal/walk"
)

// TestPackedDispatch pins the path selection for packed views: a
// *graph.Packed must take the scratch-state searcher through its row session
// (Result.Flat true), and ForceMap must still force the map baseline through
// the packed view's streaming View methods.
func TestPackedDispatch(t *testing.T) {
	toy := testgraphs.NewToy()
	pg := graph.Pack(toy.Graph)
	q := walk.SingleNode(toy.T1)
	opt := Options{K: 3, Epsilon: 0.01, Alpha: 0.25, Beta: 0.5}
	res, err := TopK(context.Background(), pg, q, opt)
	if err != nil {
		t.Fatalf("packed TopK: %v", err)
	}
	if !res.Flat {
		t.Errorf("packed view should take the scratch-state path")
	}
	forced, err := TopK(context.Background(), pg, q, Options{K: 3, Epsilon: 0.01, Alpha: 0.25, Beta: 0.5, ForceMap: true})
	if err != nil {
		t.Fatalf("forced-map TopK: %v", err)
	}
	if forced.Flat {
		t.Errorf("ForceMap should take the map searcher even on a packed view")
	}
}

// TestPackedMatchesFlatBitForBit is the representation parity gate at the
// topk layer: on every test graph and scheme, TopK over graph.Pack(g) must
// return exactly the flat-CSR result — same nodes, same rounds, and
// bit-identical scores, since both paths run the same searcher over the same
// row contents in the same order.
func TestPackedMatchesFlatBitForBit(t *testing.T) {
	toy := testgraphs.NewToy()
	cases := []struct {
		name string
		g    *graph.Graph
		q    graph.NodeID
	}{
		{"toy", toy.Graph, toy.T1},
		{"toyPaper", toy.Graph, toy.P[2]},
		{"line", testgraphs.Line(10), 0},
		{"cycle", testgraphs.Cycle(12), 7},
		{"star", testgraphs.Star(8), 0},
	}
	for _, tc := range cases {
		pg := graph.Pack(tc.g)
		q := walk.SingleNode(tc.q)
		// Pin K at a strict score gap of the exact ranking, as in the flat-vs-
		// map suite: across an exact tie the ε≈0 conditions are unsatisfiable
		// and the search spins to MaxRounds.
		naive, _, err := Naive(context.Background(), tc.g, q, Options{K: tc.g.NumNodes(), Alpha: 0.25, Beta: 0.5})
		if err != nil {
			t.Fatalf("%s: Naive: %v", tc.name, err)
		}
		k := 0
		for i := 0; i < len(naive) && i < 5; i++ {
			if naive[i].Score <= 0 {
				break
			}
			if i+1 < len(naive) && naive[i].Score-naive[i+1].Score <= 1e-6 {
				break
			}
			k = i + 1
		}
		if k == 0 {
			t.Fatalf("%s: no strict gap to pin K at", tc.name)
		}
		for _, scheme := range []Scheme{Scheme2SBound, SchemeGS, SchemeGupta, SchemeSarkar} {
			for _, eps := range []float64{1e-9, 0.01} {
				t.Run(fmt.Sprintf("%s/%s/eps=%g", tc.name, scheme, eps), func(t *testing.T) {
					opt := Options{K: k, Epsilon: eps, Alpha: 0.25, Beta: 0.5, Scheme: scheme}
					flat, err := TopK(context.Background(), tc.g, q, opt)
					if err != nil {
						t.Fatalf("flat: %v", err)
					}
					packed, err := TopK(context.Background(), pg, q, opt)
					if err != nil {
						t.Fatalf("packed: %v", err)
					}
					if flat.Converged != packed.Converged || flat.Rounds != packed.Rounds {
						t.Fatalf("search shape disagrees: flat rounds=%d conv=%v, packed rounds=%d conv=%v",
							flat.Rounds, flat.Converged, packed.Rounds, packed.Converged)
					}
					if len(flat.TopK) != len(packed.TopK) {
						t.Fatalf("sizes disagree: flat %d, packed %d", len(flat.TopK), len(packed.TopK))
					}
					for i := range flat.TopK {
						if flat.TopK[i].Node != packed.TopK[i].Node {
							t.Errorf("rank %d: flat node %d, packed node %d", i, flat.TopK[i].Node, packed.TopK[i].Node)
						}
						if math.Float64bits(flat.TopK[i].Score) != math.Float64bits(packed.TopK[i].Score) {
							t.Errorf("rank %d: scores differ bit-for-bit: %v != %v",
								i, flat.TopK[i].Score, packed.TopK[i].Score)
						}
					}
				})
			}
		}
	}
}

// TestPackedNaiveBitForBit pins the exact solver over a packed view: Naive
// (full FRank/TRank solves through the packed kernels) must reproduce the
// flat ranking and scores bit for bit.
func TestPackedNaiveBitForBit(t *testing.T) {
	toy := testgraphs.NewToy()
	pg := graph.Pack(toy.Graph)
	q := walk.SingleNode(toy.T1)
	opt := Options{K: toy.Graph.NumNodes(), Alpha: 0.25, Beta: 0.5}
	want, _, err := Naive(context.Background(), toy.Graph, q, opt)
	if err != nil {
		t.Fatalf("flat Naive: %v", err)
	}
	got, _, err := Naive(context.Background(), pg, q, opt)
	if err != nil {
		t.Fatalf("packed Naive: %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("sizes disagree: %d != %d", len(want), len(got))
	}
	for i := range want {
		if want[i].Node != got[i].Node || math.Float64bits(want[i].Score) != math.Float64bits(got[i].Score) {
			t.Fatalf("rank %d differs: flat (%d, %v), packed (%d, %v)",
				i, want[i].Node, want[i].Score, got[i].Node, got[i].Score)
		}
	}
}
