// Package topk implements online approximate top-K processing for
// RoundTripRank: the 2SBound algorithm of Sect. V-A (Algorithm 1) with the
// ε-relaxed top-K conditions of Eq. 13–14, the weaker bound schemes used as
// efficiency baselines in Sect. VI-B (G+S, Gupta, Sarkar), and the naive
// iterative baseline that computes the exact ranking.
package topk

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"roundtriprank/internal/bounds"
	"roundtriprank/internal/core"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/walk"
)

// Scheme selects the bound-updating machinery used for each side of the
// decomposition, mirroring the efficiency baselines of Fig. 11(a).
type Scheme int

const (
	// Scheme2SBound uses the paper's two-stage framework for both F-Rank and
	// T-Rank (Proposition 4 bounds + Stage II refinement).
	Scheme2SBound Scheme = iota
	// SchemeGS uses the weaker Gupta bounds for F-Rank and the Sarkar
	// expansion-only bounds for T-Rank.
	SchemeGS
	// SchemeGupta uses the weaker Gupta bounds for F-Rank but the two-stage
	// framework for T-Rank.
	SchemeGupta
	// SchemeSarkar uses the two-stage framework for F-Rank but the Sarkar
	// expansion-only bounds for T-Rank.
	SchemeSarkar
)

// String returns the scheme name used in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case Scheme2SBound:
		return "2SBound"
	case SchemeGS:
		return "G+S"
	case SchemeGupta:
		return "Gupta"
	case SchemeSarkar:
		return "Sarkar"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Options configures a top-K query.
type Options struct {
	// K is the number of results to return.
	K int
	// Epsilon is the approximation slack ε of the relaxed top-K conditions;
	// zero demands the exact top K.
	Epsilon float64
	// Alpha is the teleport probability (default walk.DefaultAlpha).
	Alpha float64
	// Beta is the specificity bias; 0.5 gives RoundTripRank. Bounds are
	// combined as f^(2(1−β))·t^(2β), which equals the paper's f·t scale at
	// β = 0.5 and remains rank-equivalent to Eq. 12 otherwise.
	Beta float64
	// Scheme selects the bound machinery (default Scheme2SBound).
	Scheme Scheme
	// Keep, when non-nil, restricts the result set: only nodes for which it
	// returns true are admitted as top-K candidates (use it to filter by node
	// type and to exclude the query itself, the paper's Sect. VI-A protocol).
	// Filtered-out nodes still participate in the expansions — they carry
	// probability mass — but never appear in the ranking.
	Keep func(graph.NodeID) bool
	// FExpansion and TExpansion override the per-round expansion widths m for
	// the two neighborhoods (defaults 100 and 5).
	FExpansion int
	// TExpansion is the border-node expansion width.
	TExpansion int
	// MaxRounds caps the number of expansion rounds as a safety valve; the
	// result is marked not converged (and degraded) when the cap is hit. Zero
	// means a large default.
	MaxRounds int
	// Budget, when non-nil, bounds the query's work (rounds, touched nodes,
	// soft deadline, per-round frontier cap) and switches the searcher into
	// anytime mode: on exhaustion it stops cleanly and returns the best
	// candidate ranking with a quality certificate (Result.CertifiedK,
	// Result.AchievedEpsilon) instead of burning until convergence.
	Budget *Budget
	// ForceMap forces the map-based searcher even on CSR-capable views. It
	// exists for the flat-vs-map benchmarks (cmd/benchrunner -fig online,
	// BenchmarkOnline*): with it, the baseline keeps the CSR-streaming BCA
	// fast path the map searcher always had, so the comparison isolates
	// exactly what this option's name says — the map-based searcher state —
	// and nothing else. Serving paths should never set it.
	ForceMap bool
}

// DefaultOptions returns the configuration used in the paper's efficiency
// study: K = 10, ε = 0.01, α = 0.25, balanced β.
func DefaultOptions() Options {
	return Options{
		K:       10,
		Epsilon: 0.01,
		Alpha:   walk.DefaultAlpha,
		Beta:    core.BalancedBeta,
		Scheme:  Scheme2SBound,
	}
}

func (o Options) normalized() (Options, error) {
	if o.K <= 0 {
		return o, fmt.Errorf("topk: K must be positive, got %d", o.K)
	}
	if o.Epsilon < 0 {
		return o, fmt.Errorf("topk: epsilon must be non-negative, got %g", o.Epsilon)
	}
	if o.Alpha == 0 {
		o.Alpha = walk.DefaultAlpha
	}
	if o.Alpha <= 0 || o.Alpha >= 1 {
		return o, fmt.Errorf("topk: alpha must be in (0,1), got %g", o.Alpha)
	}
	if o.Beta < 0 || o.Beta > 1 {
		return o, fmt.Errorf("topk: beta must be in [0,1], got %g", o.Beta)
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 100000
	}
	return o, nil
}

// Result is the outcome of an online top-K query.
type Result struct {
	// TopK lists the selected nodes in ranked order; Score is the node's
	// lower bound at termination (the quantity the candidate ranking is built
	// from in Algorithm 1).
	TopK []core.Ranked
	// Converged reports whether the ε-relaxed top-K conditions were met; false
	// means the round cap or a budget was hit, or no further expansion was
	// possible, and the current candidate ranking was returned best-effort.
	Converged bool
	// Degraded reports the search stopped on a budget or the MaxRounds valve
	// with certifiable work still remaining — as opposed to converging or
	// exhausting the graph (Stop distinguishes the cases). A degraded result
	// is never Converged.
	Degraded bool
	// CertifiedK is the length of the leading prefix of TopK proven exact by
	// the live bounds at termination: each certified position's lower bound
	// strictly beats every other candidate's and every unseen node's upper
	// bound, so the certified prefix is bit-identical to the exact ranking.
	CertifiedK int
	// AchievedEpsilon is the residual bound gap: the smallest ε under which
	// the returned ranking would satisfy Eq. 13–14 at termination. Converged
	// results report at most the requested ε; degraded ones report how far
	// the budget let them get.
	AchievedEpsilon float64
	// Stop records why the search stopped.
	Stop StopReason
	// Rounds is the number of expansion rounds executed.
	Rounds int
	// FSeen, TSeen and RSeen are the final sizes of the f-, t- and
	// r-neighborhoods (|Sf|, |St|, |S| = |Sf ∩ St|).
	FSeen, TSeen, RSeen int
	// Flat reports which execution path answered the query: true for the
	// pooled scratch-state path (CSR-capable views), false for the map-based
	// fallback.
	Flat bool
	// Touched is the number of distinct rows the searcher's working set could
	// reach: every node that ever held BCA residual plus every t-neighborhood
	// member outside that set. On the scratch-state path only (zero on the
	// map fallback). It upper-bounds the rows a remote row provider fetches
	// for the query — the O(touched) property the row-serving layer asserts.
	Touched int
}

// searcher carries the per-query state of Algorithm 1.
type searcher struct {
	view graph.View
	opt  Options
	fb   *bounds.FBounds
	tb   *bounds.TBounds
	expF float64 // exponent applied to F bounds: 2(1−β)
	expT float64 // exponent applied to T bounds: 2β
}

// TopK runs the online top-K algorithm for the query and returns the
// approximate top-K ranking by RoundTripRank+. Cancelling the context aborts
// the search within one expansion round and returns ctx.Err().
func TopK(ctx context.Context, view graph.View, q walk.Query, opt Options) (*Result, error) {
	ctx = walk.OrBackground(ctx)
	opt, err := opt.normalized()
	if err != nil {
		return nil, err
	}
	fOpt, tOpt, err := boundOptions(opt)
	if err != nil {
		return nil, err
	}
	// Views that expose flat CSR adjacency take the pooled scratch-state
	// path (near-zero allocation per query); wrapped views — masked,
	// tracking, remote — keep the map-based implementation, which doubles as
	// the correctness baseline the parity tests and benchmarks compare
	// against. Packed views (graph.Packed) run the same searcher through a
	// per-query row session — identical arithmetic and expansion order, so
	// bit-identical to the flat path for the same graph content.
	if cv, ok := view.(graph.CSRView); ok && !opt.ForceMap {
		return flatTopK(ctx, cv, q, opt, fOpt, tOpt)
	}
	if rp, ok := view.(graph.RowsProvider); ok && !opt.ForceMap {
		return topKRowsNormalized(ctx, rp.NewRows(), q, opt, fOpt, tOpt)
	}
	fb, err := bounds.NewFBounds(view, q, fOpt)
	if err != nil {
		return nil, err
	}
	tb, err := bounds.NewTBounds(view, q, tOpt)
	if err != nil {
		return nil, err
	}
	s := &searcher{
		view: view,
		opt:  opt,
		fb:   fb,
		tb:   tb,
		expF: 2 * (1 - opt.Beta),
		expT: 2 * opt.Beta,
	}
	return s.run(ctx)
}

// boundOptions derives both sides' bound options from the query options:
// expansion-width overrides plus the scheme selection. The weaker baseline
// schemes keep the refinement loop (so that every scheme still converges to a
// correct answer) but swap in the looser bound rules the paper attributes to
// the prior works: Gupta's first-arrival unseen bound for F-Rank, and
// expansion-time-only unseen tightening (Sarkar-style) for T-Rank. Looser
// bounds force more expansions and therefore longer query times (Fig. 11a).
func boundOptions(opt Options) (bounds.FOptions, bounds.TOptions, error) {
	fOpt := bounds.DefaultFOptions(opt.Alpha)
	tOpt := bounds.DefaultTOptions(opt.Alpha)
	if opt.FExpansion > 0 {
		fOpt.M = opt.FExpansion
	}
	if opt.TExpansion > 0 {
		tOpt.M = opt.TExpansion
	}
	switch opt.Scheme {
	case Scheme2SBound:
	case SchemeGS:
		fOpt.ImprovedBound = false
		tOpt.TightenUnseenInRefine = false
	case SchemeGupta:
		fOpt.ImprovedBound = false
	case SchemeSarkar:
		tOpt.TightenUnseenInRefine = false
	default:
		return fOpt, tOpt, fmt.Errorf("topk: unknown scheme %d", int(opt.Scheme))
	}
	if opt.Budget != nil && opt.Budget.FrontierCap > 0 {
		tOpt.FrontierCap = opt.Budget.FrontierCap
	}
	return fOpt, tOpt, nil
}

// TopKRows runs the online top-K algorithm against a row provider — the
// remote-backed serving path, where adjacency streams in row by row from
// stripe workers (internal/rowserve) instead of living in coordinator memory.
// It always uses the pooled scratch-state searcher; the provider's row reads
// signal failure by panicking with *graph.RowFetchError, which this function
// converts back into an ordinary error (any other panic propagates).
//
// The searcher's arithmetic and expansion order are identical to the local
// flat path, so for the same graph content the returned ranking and scores
// are bit-identical to TopK over a CSR view.
func TopKRows(ctx context.Context, rows graph.Rows, q walk.Query, opt Options) (res *Result, err error) {
	ctx = walk.OrBackground(ctx)
	opt, err = opt.normalized()
	if err != nil {
		return nil, err
	}
	fOpt, tOpt, err := boundOptions(opt)
	if err != nil {
		return nil, err
	}
	return topKRowsNormalized(ctx, rows, q, opt, fOpt, tOpt)
}

// topKRowsNormalized is the shared tail of TopKRows and the RowsProvider
// branch of TopK: it runs the pooled scratch-state searcher over a row
// provider with already-normalized options, converting *graph.RowFetchError
// panics back into ordinary errors (any other panic propagates).
func topKRowsNormalized(ctx context.Context, rows graph.Rows, q walk.Query, opt Options, fOpt bounds.FOptions, tOpt bounds.TOptions) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			fe, ok := r.(*graph.RowFetchError)
			if !ok {
				panic(r)
			}
			res, err = nil, fe.Err
		}
	}()
	return flatTopKRows(ctx, rows, q, opt, fOpt, tOpt)
}

// effectiveMaxRounds composes the MaxRounds valve with the budget's round
// cap; the tighter of the two wins.
func effectiveMaxRounds(opt Options) int {
	limit := opt.MaxRounds
	if b := opt.Budget; b != nil && b.MaxRounds > 0 && b.MaxRounds < limit {
		limit = b.MaxRounds
	}
	return limit
}

// overTouched reports whether the budget's working-set cap is exhausted.
func overTouched(b *Budget, fSeen, tSeen int) bool {
	return b != nil && b.MaxTouched > 0 && fSeen+tSeen >= b.MaxTouched
}

// pastDeadline reports whether the budget's soft deadline has passed; at
// least one round always runs so the response is never empty-handed.
func pastDeadline(b *Budget, round int) bool {
	return b != nil && round > 0 && !b.Deadline.IsZero() && time.Now().After(b.Deadline)
}

func (s *searcher) run(ctx context.Context) (*Result, error) {
	res := &Result{}
	b := s.opt.Budget
	maxRounds := effectiveMaxRounds(s.opt)
	var members []member
	stop := StopRounds
	for round := 0; round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			// Without a budget, cancellation keeps its historical contract:
			// abort and surface ctx.Err(). With one, the anytime contract
			// wins — finalize the completed rounds' bounds into a certificate
			// instead of discarding them.
			if b == nil {
				return nil, err
			}
			members, _ = s.candidate()
			stop = StopCanceled
			break
		}
		if pastDeadline(b, round) {
			members, _ = s.candidate()
			stop = StopDeadline
			break
		}
		fProgress := s.fb.Expand()
		tProgress := s.tb.Expand()
		res.Rounds++

		var ok bool
		members, ok = s.candidate()
		if ok && s.satisfied(members) {
			stop = StopConverged
			break
		}
		if fProgress == 0 && tProgress == 0 {
			// Nothing left to expand. Refine both sides to convergence (the
			// only remaining way to tighten bounds), then return whatever the
			// neighborhood holds — possibly fewer than K nodes when the graph
			// around the query is smaller than K.
			s.fb.Refine()
			s.tb.Refine()
			members, ok = s.candidate()
			if ok && s.satisfied(members) {
				stop = StopConverged
			} else {
				stop = StopExhausted
			}
			break
		}
		if overTouched(b, s.fb.SeenCount(), s.tb.SeenCount()) {
			stop = StopTouched
			break
		}
	}
	res.Stop = stop
	res.Converged = stop == StopConverged
	res.Degraded = stop.degraded()
	res.TopK = s.rankedFrom(members)
	res.CertifiedK, res.AchievedEpsilon = certify(members, len(res.TopK), s.unseenUpper())
	res.FSeen = s.fb.SeenCount()
	res.TSeen = s.tb.SeenCount()
	res.RSeen = s.intersectionSize()
	return res, nil
}

// rLower and rUpper combine the F/T bounds for a node in S (Eq. 15, with the
// β exponents).
func (s *searcher) rLower(v graph.NodeID) float64 {
	return s.combine(s.fb.Lower(v), s.tb.Lower(v))
}

func (s *searcher) rUpper(v graph.NodeID) float64 {
	return s.combine(s.fb.Upper(v), s.tb.Upper(v))
}

func (s *searcher) combine(f, t float64) float64 {
	return combineBounds(f, t, s.expF, s.expT)
}

// combineBounds combines one F-side and one T-side bound with the β
// exponents (Eq. 15); shared by the map and scratch-state searchers.
func combineBounds(f, t, expF, expT float64) float64 {
	if f < 0 {
		f = 0
	}
	if t < 0 {
		t = 0
	}
	switch {
	case expF == 1 && expT == 1:
		return f * t
	case expT == 0:
		return math.Pow(f, expF)
	case expF == 0:
		return math.Pow(t, expT)
	default:
		return math.Pow(f, expF) * math.Pow(t, expT)
	}
}

// unseenUpper computes the unseen upper bound rˆ(q) for nodes outside
// S = Sf ∩ St (Eq. 16): the maximum of (a) both-unseen, (b) seen only by Sf,
// (c) seen only by St.
func (s *searcher) unseenUpper() float64 {
	fu, tu := s.fb.UnseenUpper(), s.tb.UnseenUpper()
	best := s.combine(fu, tu)
	s.fb.EachSeen(func(v graph.NodeID, _, upper float64) {
		if !s.tb.Seen(v) {
			if c := s.combine(upper, tu); c > best {
				best = c
			}
		}
	})
	s.tb.EachSeen(func(v graph.NodeID, _, upper float64) {
		if !s.fb.Seen(v) {
			if c := s.combine(fu, upper); c > best {
				best = c
			}
		}
	})
	return best
}

func (s *searcher) intersectionSize() int {
	n := 0
	s.fb.EachSeen(func(v graph.NodeID, _, _ float64) {
		if s.tb.Seen(v) {
			n++
		}
	})
	return n
}

// member is a node of the r-neighborhood with its combined bounds.
type member struct {
	node         graph.NodeID
	lower, upper float64
}

// candidate assembles the r-neighborhood S = Sf ∩ St (restricted to nodes the
// Keep filter admits) sorted by lower bound and reports whether it already
// holds at least K nodes. Nodes rejected by Keep never enter the candidate
// ranking, but the unseen upper bound remains over all unseen nodes, which is
// conservative: it can only delay termination, never admit a wrong result.
func (s *searcher) candidate() ([]member, bool) {
	var members []member
	s.fb.EachSeen(func(v graph.NodeID, _, _ float64) {
		if s.tb.Seen(v) && (s.opt.Keep == nil || s.opt.Keep(v)) {
			members = append(members, member{node: v, lower: s.rLower(v), upper: s.rUpper(v)})
		}
	})
	sort.Slice(members, func(i, j int) bool {
		if members[i].lower != members[j].lower {
			return members[i].lower > members[j].lower
		}
		return members[i].node < members[j].node
	})
	return members, len(members) >= s.opt.K
}

// satisfied checks the ε-relaxed top-K conditions (Eq. 13–14) against the
// sorted candidate neighborhood.
func (s *searcher) satisfied(members []member) bool {
	k := s.opt.K
	if len(members) < k {
		return false
	}
	eps := s.opt.Epsilon
	// Eq. 13: the K-th lower bound must dominate every other node's upper
	// bound (seen beyond K, or unseen) up to ε.
	maxOther := s.unseenUpper()
	for _, m := range members[k:] {
		if m.upper > maxOther {
			maxOther = m.upper
		}
	}
	if !(members[k-1].lower > maxOther-eps) {
		return false
	}
	// Eq. 14: the top K must be correctly ordered up to ε.
	for i := 0; i+1 < k; i++ {
		if !(members[i].lower > members[i+1].upper-eps) {
			return false
		}
	}
	return true
}

func (s *searcher) rankedFrom(members []member) []core.Ranked {
	k := s.opt.K
	if len(members) < k {
		k = len(members)
	}
	out := make([]core.Ranked, k)
	for i := 0; i < k; i++ {
		out[i] = core.Ranked{Node: members[i].node, Score: members[i].lower}
	}
	return out
}

// Naive computes the exact top-K ranking with the iterative solvers (Eq. 5 and
// 8), the baseline labelled "Naive" in Fig. 11(a). It also returns the full
// exact score vector so that callers can evaluate approximation quality. The
// Keep filter is honored exactly as in TopK.
func Naive(ctx context.Context, view graph.View, q walk.Query, opt Options) ([]core.Ranked, []float64, error) {
	opt, err := opt.normalized()
	if err != nil {
		return nil, nil, err
	}
	scores, err := core.Compute(ctx, view, q, core.Params{
		Walk: walk.Params{Alpha: opt.Alpha},
		Beta: opt.Beta,
	})
	if err != nil {
		return nil, nil, err
	}
	// Rescale to the same 2(1−β)/2β exponent scale used by the bound
	// combination so scores are comparable across implementations.
	rescaled := make([]float64, len(scores.R))
	for i := range rescaled {
		rescaled[i] = math.Pow(scores.F[i], 2*(1-opt.Beta)) * math.Pow(scores.T[i], 2*opt.Beta)
	}
	return core.TopN(rescaled, opt.K, opt.Keep), rescaled, nil
}
