package topk

import (
	"fmt"
	"time"
)

// Budget bounds the work an online top-K query may spend before returning a
// best-effort, certified partial result — the anytime execution contract. A
// nil Budget keeps the historical behavior (run until convergence, the
// MaxRounds valve, or cancellation). Zero-valued fields are unset.
//
// Rounds- and touched-capped budgets are deterministic: the same budget on
// the same graph stops at the same round with the same bounds, so the result
// and its certificate are bit-identical across the map, flat, packed-session
// and remote execution paths. Deadline budgets depend on the wall clock and
// carry no such guarantee.
type Budget struct {
	// MaxRounds caps expansion rounds. It composes with Options.MaxRounds:
	// the tighter of the two wins.
	MaxRounds int
	// MaxTouched stops the search once |Sf| + |St| reaches this many nodes —
	// a direct cap on working-set size (and, on the remote path, on rows
	// fetched over the wire).
	MaxTouched int
	// Deadline is a soft wall-clock stop: checked between rounds, so the
	// search overshoots by at most one round. At least one round always runs.
	Deadline time.Time
	// FrontierCap bounds the T-side node admissions per expansion round.
	// Deferred nodes stay outside St under the (monotone) unseen upper bound,
	// so every certificate computed under a cap remains sound; hub queries
	// trade rounds for bounded per-round cost. The F side is never capped:
	// BCA must spread each processed node's residual to all its out-neighbors
	// or mass conservation (and with it every F bound) breaks.
	FrontierCap int
}

// StopReason records why the search stopped.
type StopReason int

const (
	// StopNone is the zero value (no search ran).
	StopNone StopReason = iota
	// StopConverged: the ε-relaxed top-K conditions (Eq. 13–14) were met.
	StopConverged
	// StopExhausted: no expansion remained anywhere; the graph around the
	// query is fully explored and the result is as good as it can get.
	StopExhausted
	// StopRounds: the round cap (Options.MaxRounds or Budget.MaxRounds) hit.
	StopRounds
	// StopTouched: Budget.MaxTouched hit.
	StopTouched
	// StopDeadline: Budget.Deadline passed between rounds.
	StopDeadline
	// StopCanceled: the context was cancelled with a budget present, so the
	// previous round's bounds were finalized into a certificate instead of
	// discarding the completed work.
	StopCanceled
)

// String names the stop reason for logs and wire responses.
func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopConverged:
		return "converged"
	case StopExhausted:
		return "exhausted"
	case StopRounds:
		return "rounds"
	case StopTouched:
		return "touched"
	case StopDeadline:
		return "deadline"
	case StopCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// degraded reports whether the reason means the search was cut off with
// certifiable work still remaining (as opposed to converging or exhausting
// the graph).
func (r StopReason) degraded() bool {
	switch r {
	case StopRounds, StopTouched, StopDeadline, StopCanceled:
		return true
	default:
		return false
	}
}

// certify computes the quality certificate for a (possibly partial) ranking
// from the live bounds at termination: members is the full sorted candidate
// neighborhood (lower descending, node ascending — the order TopK is cut
// from), resultLen = len(TopK), and unseen is the Eq. 16 upper bound on every
// node outside S.
//
// The certified prefix length is the largest c such that every position
// j < c has a lower bound STRICTLY above the upper bound of every other
// candidate ranked below it and of every unseen node. By induction position
// 0 is then the exact top-1, position 1 the exact top-2, …: the certified
// prefix is bit-identical to the exact top-K prefix. Ties never certify —
// strictness is what makes the guarantee sound.
//
// The achieved epsilon is the residual bound gap: the smallest ε under which
// the returned ranking of resultLen nodes would satisfy Eq. 13–14 right now.
// A converged search therefore reports achieved ≤ its requested ε; a degraded
// one reports how far it got.
func certify(members []member, resultLen int, unseen float64) (certK int, achieved float64) {
	// Reverse suffix-max sweep: suff holds the max upper bound over every
	// candidate ranked strictly below j, seeded with the unseen bound.
	firstFail := -1
	suff := unseen
	for j := len(members) - 1; j >= 0; j-- {
		if j < resultLen && !(members[j].lower > suff) {
			firstFail = j
		}
		if members[j].upper > suff {
			suff = members[j].upper
		}
	}
	certK = resultLen
	if firstFail >= 0 {
		certK = firstFail
	}

	if resultLen == 0 {
		return 0, unseen
	}
	// Eq. 13 gap at the last returned position.
	maxOther := unseen
	for _, m := range members[resultLen:] {
		if m.upper > maxOther {
			maxOther = m.upper
		}
	}
	if g := maxOther - members[resultLen-1].lower; g > achieved {
		achieved = g
	}
	// Eq. 14 gaps between adjacent returned positions.
	for i := 0; i+1 < resultLen; i++ {
		if g := members[i+1].upper - members[i].lower; g > achieved {
			achieved = g
		}
	}
	return certK, achieved
}
