package topk

import (
	"context"
	"fmt"
	"math"
	"testing"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/scratch"
	"roundtriprank/internal/testgraphs"
	"roundtriprank/internal/walk"
)

// hideCSR wraps a view so it no longer satisfies graph.CSRView, forcing the
// map-based searcher — the same trick the kernel benchmarks use to compare
// the CSR and generic walk paths.
func hideCSR(v graph.View) graph.View { return struct{ graph.View }{v} }

// TestFlatDispatch pins the path selection: CSR-capable views take the
// pooled scratch-state searcher, wrapped views fall back to the map-based
// one, and both report it through Result.Flat.
func TestFlatDispatch(t *testing.T) {
	toy := testgraphs.NewToy()
	q := walk.SingleNode(toy.T1)
	opt := Options{K: 3, Epsilon: 0.01, Alpha: 0.25, Beta: 0.5}
	flat, err := TopK(context.Background(), toy.Graph, q, opt)
	if err != nil {
		t.Fatalf("flat TopK: %v", err)
	}
	if !flat.Flat {
		t.Errorf("CSR view should take the scratch-state path")
	}
	mapped, err := TopK(context.Background(), hideCSR(toy.Graph), q, opt)
	if err != nil {
		t.Fatalf("map TopK: %v", err)
	}
	if mapped.Flat {
		t.Errorf("wrapped view should take the map fallback")
	}
	forced, err := TopK(context.Background(), toy.Graph, q, Options{K: 3, Epsilon: 0.01, Alpha: 0.25, Beta: 0.5, ForceMap: true})
	if err != nil {
		t.Fatalf("forced-map TopK: %v", err)
	}
	if forced.Flat {
		t.Errorf("ForceMap should take the map searcher even on a CSR view")
	}
}

// TestFlatMatchesMapPath is the flat-vs-map parity gate: on every test graph
// and scheme, the scratch-state path and the map-based baseline must return
// the same top-K node sets in the same order with matching scores (both are
// exact lower bounds at an ε≈0-converged termination, so tiny floating-point
// divergence from different processing orders is all that is tolerated). K
// is chosen at a strict score gap of the exact ranking, as in the root
// parity suite: across an exact tie the ε≈0 conditions are unsatisfiable.
func TestFlatMatchesMapPath(t *testing.T) {
	toy := testgraphs.NewToy()
	cases := []struct {
		name string
		g    *graph.Graph
		q    graph.NodeID
	}{
		{"toy", toy.Graph, toy.T1},
		{"toyPaper", toy.Graph, toy.P[2]},
		{"line", testgraphs.Line(10), 0},
		{"cycle", testgraphs.Cycle(12), 7},
		{"star", testgraphs.Star(8), 0},
	}
	for _, tc := range cases {
		q := walk.SingleNode(tc.q)
		naive, _, err := Naive(context.Background(), tc.g, q, Options{K: tc.g.NumNodes(), Alpha: 0.25, Beta: 0.5})
		if err != nil {
			t.Fatalf("%s: Naive: %v", tc.name, err)
		}
		k := 0
		for i := 0; i < len(naive) && i < 5; i++ {
			if naive[i].Score <= 0 {
				break
			}
			if i+1 < len(naive) && naive[i].Score-naive[i+1].Score <= 1e-6 {
				break
			}
			k = i + 1
		}
		if k == 0 {
			t.Fatalf("%s: no strict gap to pin K at", tc.name)
		}
		for _, scheme := range []Scheme{Scheme2SBound, SchemeGS, SchemeGupta, SchemeSarkar} {
			t.Run(fmt.Sprintf("%s/%s", tc.name, scheme), func(t *testing.T) {
				opt := Options{K: k, Epsilon: 1e-9, Alpha: 0.25, Beta: 0.5, Scheme: scheme}
				flat, err := TopK(context.Background(), tc.g, q, opt)
				if err != nil {
					t.Fatalf("flat: %v", err)
				}
				mapped, err := TopK(context.Background(), hideCSR(tc.g), q, opt)
				if err != nil {
					t.Fatalf("map: %v", err)
				}
				if !flat.Flat || mapped.Flat {
					t.Fatalf("dispatch wrong: flat=%v mapped=%v", flat.Flat, mapped.Flat)
				}
				if flat.Converged != mapped.Converged {
					t.Fatalf("convergence disagrees: flat=%v map=%v", flat.Converged, mapped.Converged)
				}
				if len(flat.TopK) != len(mapped.TopK) {
					t.Fatalf("sizes disagree: flat %d, map %d", len(flat.TopK), len(mapped.TopK))
				}
				for i := range flat.TopK {
					if flat.TopK[i].Node != mapped.TopK[i].Node {
						t.Errorf("rank %d: flat node %d, map node %d", i, flat.TopK[i].Node, mapped.TopK[i].Node)
					}
					if d := math.Abs(flat.TopK[i].Score - mapped.TopK[i].Score); d > 1e-9 {
						t.Errorf("rank %d: score diff %g", i, d)
					}
				}
			})
		}
	}
}

// TestFlatPoolReuseAcrossSizes alternates pooled queries between graphs of
// very different sizes, forcing the recycled scratch to grow and shrink, and
// checks each answer stays identical to the first run on that graph.
func TestFlatPoolReuseAcrossSizes(t *testing.T) {
	toy := testgraphs.NewToy()
	big := testgraphs.Cycle(500)
	type key struct {
		name string
		g    *graph.Graph
		q    graph.NodeID
	}
	cases := []key{
		{"toy", toy.Graph, toy.T1},
		{"big", big, 250},
		{"star", testgraphs.Star(4), 0},
	}
	run := func(g *graph.Graph, q graph.NodeID) *Result {
		res, err := TopK(context.Background(), g, walk.SingleNode(q), Options{K: 3, Epsilon: 0.01, Alpha: 0.25, Beta: 0.5})
		if err != nil {
			t.Fatalf("TopK: %v", err)
		}
		return res
	}
	want := map[string]*Result{}
	for _, tc := range cases {
		want[tc.name] = run(tc.g, tc.q)
	}
	for round := 0; round < 3; round++ {
		for _, tc := range cases {
			got := run(tc.g, tc.q)
			w := want[tc.name]
			if len(got.TopK) != len(w.TopK) || got.Rounds != w.Rounds || got.FSeen != w.FSeen || got.TSeen != w.TSeen {
				t.Fatalf("round %d %s: pooled rerun diverged (%+v vs %+v)", round, tc.name, got, w)
			}
			for i := range w.TopK {
				if got.TopK[i] != w.TopK[i] {
					t.Fatalf("round %d %s rank %d: %+v vs %+v", round, tc.name, i, got.TopK[i], w.TopK[i])
				}
			}
		}
	}
}

// TestFlatSteadyStateAllocs pins the headline property of the scratch-state
// path: once the pool is warm, an online 2SBound query performs only a small
// constant number of allocations (the Result struct and ranked slice),
// versus thousands of map/heap allocations on the pre-PR path.
func TestFlatSteadyStateAllocs(t *testing.T) {
	if scratch.RaceEnabled {
		t.Skip("sync.Pool bypasses reuse under the race detector; allocation counts are not meaningful")
	}
	toy := testgraphs.NewToy()
	q := walk.SingleNode(toy.T1)
	opt := Options{K: 3, Epsilon: 0.01, Alpha: 0.25, Beta: 0.5}
	// Warm the pool.
	if _, err := TopK(context.Background(), toy.Graph, q, opt); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := TopK(context.Background(), toy.Graph, q, opt); err != nil {
			t.Fatalf("TopK: %v", err)
		}
	})
	// The budget leaves headroom for the Result, the ranked slice and an
	// occasional pool refill after a GC, while still failing loudly if a map
	// or per-round allocation sneaks back into the hot path.
	const budget = 12
	if avg > budget {
		t.Errorf("steady-state TopK allocates %.1f objects/query, budget %d", avg, budget)
	}
}
