package topk

import (
	"context"
	"slices"
	"sync"
	"sync/atomic"

	"roundtriprank/internal/bounds"
	"roundtriprank/internal/core"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/walk"
)

// flatSearcher is the scratch-state counterpart of searcher: the whole
// per-query state of Algorithm 1 — BCA engine, both bound trackers, the
// candidate buffer — lives in one pooled object backed by dense
// generation-stamped arrays, so a steady-state query allocates (almost)
// nothing. Instances are recycled through flatPool and rebound to the query
// (and, after an engine epoch swap, resized to the new NumNodes) by Init.
type flatSearcher struct {
	opt        Options
	fb         bounds.FFlat
	tb         bounds.TFlat
	expF, expT float64 // exponents applied to F/T bounds: 2(1−β), 2β
	members    []member
}

// flatPool recycles flatSearcher scratch across queries and goroutines. Each
// pooled object holds O(NumNodes) of arrays (see docs/TUNING.md for the
// footprint); under concurrency the pool grows to about one object per
// simultaneously executing online query.
var flatPool = sync.Pool{New: func() any { return new(flatSearcher) }}

// poolInUse and poolPeak track scratch-pool occupancy: how many flatSearcher
// objects are checked out right now, and the high-water mark since process
// start. Peak approximates the pool's steady-state size (the Pool itself
// offers no visibility), which is what operators need to bound the scratch
// footprint — see docs/TUNING.md.
var poolInUse, poolPeak atomic.Int64

// PoolStats reports the scratch pool's current and peak checkout counts.
func PoolStats() (inUse, peak int64) { return poolInUse.Load(), poolPeak.Load() }

// getSearcher checks a pooled searcher out, maintaining the occupancy gauges.
func getSearcher() *flatSearcher {
	n := poolInUse.Add(1)
	for {
		p := poolPeak.Load()
		if n <= p || poolPeak.CompareAndSwap(p, n) {
			break
		}
	}
	return flatPool.Get().(*flatSearcher)
}

// putSearcher returns a detached searcher to the pool.
func putSearcher(s *flatSearcher) {
	flatPool.Put(s)
	poolInUse.Add(-1)
}

// flatTopK answers one online top-K query on the scratch-state path. The
// caller has already normalized opt and derived the scheme's bound options.
func flatTopK(ctx context.Context, view graph.CSRView, q walk.Query, opt Options, fOpt bounds.FOptions, tOpt bounds.TOptions) (*Result, error) {
	s := getSearcher()
	// Release drops the searcher's references to the snapshot's CSR arrays
	// and the caller's Keep closure before the object idles in the pool:
	// after an epoch swap, a pooled searcher must not pin the superseded
	// graph (or whatever Keep captured) until its next reuse.
	defer func() {
		s.opt = Options{}
		s.fb.Detach()
		s.tb.Detach()
		putSearcher(s)
	}()
	if err := s.fb.Init(view, q, fOpt); err != nil {
		return nil, err
	}
	if err := s.tb.Init(view, q, tOpt); err != nil {
		return nil, err
	}
	s.opt = opt
	s.expF = 2 * (1 - opt.Beta)
	s.expT = 2 * opt.Beta
	return s.run(ctx)
}

// flatTopKRows is flatTopK against a row provider instead of a CSR view: the
// same pooled searcher, the same round loop, with both bound trackers bound
// through InitRows. Row-fetch failures arrive as *graph.RowFetchError panics;
// they unwind through the deferred release here (the searcher goes back to
// the pool detached) and are recovered by TopKRows.
func flatTopKRows(ctx context.Context, rows graph.Rows, q walk.Query, opt Options, fOpt bounds.FOptions, tOpt bounds.TOptions) (*Result, error) {
	s := getSearcher()
	defer func() {
		s.opt = Options{}
		s.fb.Detach()
		s.tb.Detach()
		putSearcher(s)
	}()
	if err := s.fb.InitRows(rows, q, fOpt); err != nil {
		return nil, err
	}
	if err := s.tb.InitRows(rows, q, tOpt); err != nil {
		return nil, err
	}
	s.opt = opt
	s.expF = 2 * (1 - opt.Beta)
	s.expT = 2 * opt.Beta
	return s.run(ctx)
}

// run is Algorithm 1's round loop, mirroring searcher.run — same budget
// checks at the same points, so both paths stop at the same round with the
// same bounds and emit bit-identical certificates.
func (s *flatSearcher) run(ctx context.Context) (*Result, error) {
	res := &Result{Flat: true}
	b := s.opt.Budget
	maxRounds := effectiveMaxRounds(s.opt)
	stop := StopRounds
	for round := 0; round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			// No budget: abort with ctx.Err() as always. With a budget, the
			// anytime contract wins: finalize the completed rounds' bounds
			// into a certificate instead of discarding them.
			if b == nil {
				return nil, err
			}
			s.candidate()
			stop = StopCanceled
			break
		}
		if pastDeadline(b, round) {
			s.candidate()
			stop = StopDeadline
			break
		}
		fProgress := s.fb.Expand()
		tProgress := s.tb.Expand()
		res.Rounds++

		ok := s.candidate()
		if ok && s.satisfied() {
			stop = StopConverged
			break
		}
		if fProgress == 0 && tProgress == 0 {
			// Nothing left to expand: refine to convergence and return what
			// the neighborhood holds.
			s.fb.Refine()
			s.tb.Refine()
			ok = s.candidate()
			if ok && s.satisfied() {
				stop = StopConverged
			} else {
				stop = StopExhausted
			}
			break
		}
		if overTouched(b, s.fb.SeenCount(), s.tb.SeenCount()) {
			stop = StopTouched
			break
		}
	}
	res.Stop = stop
	res.Converged = stop == StopConverged
	res.Degraded = stop.degraded()
	res.TopK = s.ranked()
	res.CertifiedK, res.AchievedEpsilon = certify(s.members, len(res.TopK), s.unseenUpper())
	res.FSeen = s.fb.SeenCount()
	res.TSeen = s.tb.SeenCount()
	res.RSeen = s.intersectionSize()
	res.Touched = s.touchedRows()
	return res, nil
}

// touchedRows counts the distinct rows the query's working set could reach:
// the F side's residual-touched set (processing, frontier prefetches and the
// Stage-II sweep all stay inside it) unioned with the t-neighborhood.
func (s *flatSearcher) touchedRows() int {
	n := s.fb.ResidualTouchedCount()
	for _, v := range s.tb.SeenList() {
		if !s.fb.ResidualTouched(v) {
			n++
		}
	}
	return n
}

func (s *flatSearcher) rLower(v graph.NodeID) float64 {
	return combineBounds(s.fb.Lower(v), s.tb.Lower(v), s.expF, s.expT)
}

func (s *flatSearcher) rUpper(v graph.NodeID) float64 {
	return combineBounds(s.fb.Upper(v), s.tb.Upper(v), s.expF, s.expT)
}

// unseenUpper computes the unseen upper bound rˆ(q) for nodes outside
// S = Sf ∩ St (Eq. 16) by streaming both touched lists.
func (s *flatSearcher) unseenUpper() float64 {
	fu, tu := s.fb.UnseenUpper(), s.tb.UnseenUpper()
	best := combineBounds(fu, tu, s.expF, s.expT)
	for _, v := range s.fb.SeenList() {
		if !s.tb.Seen(v) {
			if c := combineBounds(s.fb.Upper(v), tu, s.expF, s.expT); c > best {
				best = c
			}
		}
	}
	for _, v := range s.tb.SeenList() {
		if !s.fb.Seen(v) {
			if c := combineBounds(fu, s.tb.Upper(v), s.expF, s.expT); c > best {
				best = c
			}
		}
	}
	return best
}

func (s *flatSearcher) intersectionSize() int {
	n := 0
	for _, v := range s.fb.SeenList() {
		if s.tb.Seen(v) {
			n++
		}
	}
	return n
}

// candidate assembles the r-neighborhood S = Sf ∩ St (restricted to nodes
// the Keep filter admits) into the reusable members buffer, sorted by lower
// bound, and reports whether it already holds at least K nodes.
func (s *flatSearcher) candidate() bool {
	s.members = s.members[:0]
	for _, v := range s.fb.SeenList() {
		if s.tb.Seen(v) && (s.opt.Keep == nil || s.opt.Keep(v)) {
			s.members = append(s.members, member{node: v, lower: s.rLower(v), upper: s.rUpper(v)})
		}
	}
	slices.SortFunc(s.members, func(a, b member) int {
		switch {
		case a.lower > b.lower:
			return -1
		case a.lower < b.lower:
			return 1
		case a.node < b.node:
			return -1
		case a.node > b.node:
			return 1
		default:
			return 0
		}
	})
	return len(s.members) >= s.opt.K
}

// satisfied checks the ε-relaxed top-K conditions (Eq. 13–14) against the
// sorted candidate neighborhood.
func (s *flatSearcher) satisfied() bool {
	k := s.opt.K
	if len(s.members) < k {
		return false
	}
	eps := s.opt.Epsilon
	maxOther := s.unseenUpper()
	for _, m := range s.members[k:] {
		if m.upper > maxOther {
			maxOther = m.upper
		}
	}
	if !(s.members[k-1].lower > maxOther-eps) {
		return false
	}
	for i := 0; i+1 < k; i++ {
		if !(s.members[i].lower > s.members[i+1].upper-eps) {
			return false
		}
	}
	return true
}

func (s *flatSearcher) ranked() []core.Ranked {
	k := s.opt.K
	if len(s.members) < k {
		k = len(s.members)
	}
	out := make([]core.Ranked, k)
	for i := 0; i < k; i++ {
		out[i] = core.Ranked{Node: s.members[i].node, Score: s.members[i].lower}
	}
	return out
}
