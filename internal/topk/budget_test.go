package topk

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"roundtriprank/internal/core"
	"roundtriprank/internal/datasets"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/scratch"
	"roundtriprank/internal/testgraphs"
	"roundtriprank/internal/walk"
)

// Anytime-budget suite: the quality certificate must be sound under ANY
// budget, not just the ones the benchmarks sweep. The budget is the fuzzed
// input here — the graphs are the fixed golden set plus one 10^4-node R-MAT
// instance — because certification soundness is a property of where the
// search is cut, and a randomized budget cuts it everywhere.

// budgetCase is one (graph, query) instance the budget fuzzer runs over.
type budgetCase struct {
	name   string
	g      *graph.Graph
	q      graph.NodeID
	k      int
	rounds int // fuzzed MaxRounds upper bound
	trials int
}

func budgetCases(t testing.TB) []budgetCase {
	t.Helper()
	toy := testgraphs.NewToy()
	cases := []budgetCase{
		{"toy", toy.Graph, toy.T1, 5, 25, 40},
		{"toyPaper", toy.Graph, toy.P[2], 5, 25, 40},
		{"line", testgraphs.Line(10), 0, 5, 25, 40},
		{"cycle", testgraphs.Cycle(12), 7, 5, 25, 40},
		{"star", testgraphs.Star(8), 0, 5, 25, 40},
	}
	trials := 8
	if scratch.RaceEnabled {
		trials = 3
	}
	cfg := datasets.DefaultRMATConfig(10_000)
	cfg.Seed = 1309
	r, err := datasets.GenerateRMAT(cfg)
	if err != nil {
		t.Fatalf("GenerateRMAT: %v", err)
	}
	for v := graph.NodeID(0); v < graph.NodeID(r.Graph.NumNodes()); v++ {
		if r.Graph.OutDegree(v) > 0 && r.Graph.InDegree(v) > 0 {
			cases = append(cases, budgetCase{"rmat-10k", r.Graph, v, 10, 10, trials})
			break
		}
	}
	return cases
}

// fuzzBudget draws one budget from the seeded stream: always a round cap,
// sometimes a touched cap, sometimes a frontier cap — the combinations the
// serving layer actually produces.
func fuzzBudget(rng *rand.Rand, maxRounds int) Budget {
	b := Budget{MaxRounds: 1 + rng.Intn(maxRounds)}
	if rng.Intn(2) == 0 {
		b.MaxTouched = 10 + rng.Intn(3000)
	}
	if rng.Intn(5) < 2 {
		b.FrontierCap = []int{1, 2, 3, 8, 64, 1024}[rng.Intn(6)]
	}
	return b
}

// checkCertificate asserts the anytime contract on one result: the certified
// prefix is within the returned ranking, each certified position carries the
// node the exact reference ranks there, and the residual epsilon is coherent
// with the stop reason.
func checkCertificate(t *testing.T, label string, res *Result, opt Options, naive []core.Ranked) {
	t.Helper()
	if res.CertifiedK < 0 || res.CertifiedK > len(res.TopK) {
		t.Fatalf("%s: CertifiedK %d outside [0, %d]", label, res.CertifiedK, len(res.TopK))
	}
	for j := 0; j < res.CertifiedK; j++ {
		if res.TopK[j].Node != naive[j].Node {
			t.Fatalf("%s: certified position %d holds node %d, exact ranking has %d",
				label, j, res.TopK[j].Node, naive[j].Node)
		}
	}
	if res.AchievedEpsilon < 0 {
		t.Fatalf("%s: negative achieved epsilon %g", label, res.AchievedEpsilon)
	}
	switch {
	case res.Converged:
		if res.Stop != StopConverged || res.Degraded {
			t.Fatalf("%s: converged result with stop=%s degraded=%v", label, res.Stop, res.Degraded)
		}
		if !(res.AchievedEpsilon < opt.Epsilon) {
			t.Fatalf("%s: converged but achieved epsilon %g ≥ requested %g",
				label, res.AchievedEpsilon, opt.Epsilon)
		}
	case res.Degraded:
		if res.Stop == StopConverged || res.Stop == StopExhausted || res.Stop == StopNone {
			t.Fatalf("%s: degraded result with stop=%s", label, res.Stop)
		}
	default:
		if res.Stop != StopExhausted {
			t.Fatalf("%s: neither converged nor degraded, stop=%s", label, res.Stop)
		}
	}
}

// TestBudgetCertifiedPrefixSound is the certification soundness property
// test: on every golden graph and the R-MAT instance, under seeded-random
// budgets, the certified prefix of the (possibly heavily truncated) anytime
// result is node-identical to the exact ranking's prefix, on both the flat
// and the map execution paths, and a replay of the same budget is
// bit-identical.
func TestBudgetCertifiedPrefixSound(t *testing.T) {
	ctx := context.Background()
	for ci, bc := range budgetCases(t) {
		naive, _, err := Naive(ctx, bc.g, walk.SingleNode(bc.q), Options{K: bc.g.NumNodes(), Alpha: 0.25, Beta: 0.5})
		if err != nil {
			t.Fatalf("%s: Naive: %v", bc.name, err)
		}
		rng := rand.New(rand.NewSource(1309 + int64(ci)))
		opt := Options{K: bc.k, Epsilon: 0.01, Alpha: 0.25, Beta: 0.5}
		for trial := 0; trial < bc.trials; trial++ {
			b := fuzzBudget(rng, bc.rounds)
			opt.Budget = &b
			flat, err := TopK(ctx, bc.g, walk.SingleNode(bc.q), opt)
			if err != nil {
				t.Fatalf("%s trial %d (%+v): flat TopK: %v", bc.name, trial, b, err)
			}
			checkCertificate(t, bc.name+"/flat", flat, opt, naive)
			if b.MaxRounds > 0 && flat.Rounds > b.MaxRounds {
				t.Fatalf("%s trial %d: ran %d rounds past cap %d", bc.name, trial, flat.Rounds, b.MaxRounds)
			}

			// The map fallback certifies independently against the same
			// reference. (Scores may diverge from flat in the last float bit —
			// the parity gate for that tolerance is TestFlatMatchesMapPath —
			// but soundness must hold on both paths.)
			if bc.g.NumNodes() <= 1000 {
				mapped, err := TopK(ctx, hideCSR(bc.g), walk.SingleNode(bc.q), opt)
				if err != nil {
					t.Fatalf("%s trial %d (%+v): map TopK: %v", bc.name, trial, b, err)
				}
				if mapped.Flat {
					t.Fatalf("%s: hidden CSR still took the flat path", bc.name)
				}
				checkCertificate(t, bc.name+"/map", mapped, opt, naive)
			}

			// Determinism: the same budget replays bit-identically on the
			// pooled path — the property the cross-representation parity
			// suites build on.
			again, err := TopK(ctx, bc.g, walk.SingleNode(bc.q), opt)
			if err != nil {
				t.Fatalf("%s trial %d: replay: %v", bc.name, trial, err)
			}
			if again.Stop != flat.Stop || again.Rounds != flat.Rounds ||
				again.CertifiedK != flat.CertifiedK ||
				math.Float64bits(again.AchievedEpsilon) != math.Float64bits(flat.AchievedEpsilon) ||
				len(again.TopK) != len(flat.TopK) {
				t.Fatalf("%s trial %d (%+v): replay diverged: %+v vs %+v", bc.name, trial, b, again, flat)
			}
			for i := range flat.TopK {
				if again.TopK[i].Node != flat.TopK[i].Node ||
					math.Float64bits(again.TopK[i].Score) != math.Float64bits(flat.TopK[i].Score) {
					t.Fatalf("%s trial %d rank %d: replay not bit-identical", bc.name, trial, i)
				}
			}
		}
	}
}

// TestBudgetStopReasons pins each stop reason's observable contract on the
// toy graph with the narrow expansions TestTopKMaxRoundsCap uses (so one
// round never converges).
func TestBudgetStopReasons(t *testing.T) {
	toy := testgraphs.NewToy()
	q := walk.SingleNode(toy.T1)
	base := Options{K: 5, Epsilon: 0, Alpha: 0.25, Beta: 0.5, FExpansion: 1, TExpansion: 1}

	t.Run("rounds", func(t *testing.T) {
		opt := base
		opt.Budget = &Budget{MaxRounds: 1}
		res, err := TopK(context.Background(), toy.Graph, q, opt)
		if err != nil {
			t.Fatalf("TopK: %v", err)
		}
		if res.Stop != StopRounds || !res.Degraded || res.Converged || res.Rounds != 1 {
			t.Errorf("stop=%s degraded=%v converged=%v rounds=%d, want rounds/true/false/1",
				res.Stop, res.Degraded, res.Converged, res.Rounds)
		}
	})

	t.Run("touched", func(t *testing.T) {
		opt := base
		opt.Budget = &Budget{MaxTouched: 2}
		res, err := TopK(context.Background(), toy.Graph, q, opt)
		if err != nil {
			t.Fatalf("TopK: %v", err)
		}
		if res.Stop != StopTouched || !res.Degraded {
			t.Errorf("stop=%s degraded=%v, want touched/true", res.Stop, res.Degraded)
		}
		if res.FSeen+res.TSeen < 2 {
			t.Errorf("stopped on touched with |Sf|+|St| = %d < cap", res.FSeen+res.TSeen)
		}
	})

	t.Run("deadline", func(t *testing.T) {
		opt := base
		opt.Budget = &Budget{Deadline: time.Now().Add(-time.Hour)}
		res, err := TopK(context.Background(), toy.Graph, q, opt)
		if err != nil {
			t.Fatalf("TopK: %v", err)
		}
		if res.Stop != StopDeadline || !res.Degraded {
			t.Errorf("stop=%s degraded=%v, want deadline/true", res.Stop, res.Degraded)
		}
		if res.Rounds != 1 {
			t.Errorf("rounds = %d, want exactly 1 (at least one round always runs; the deadline is checked between rounds)", res.Rounds)
		}
	})

	t.Run("canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		opt := base
		opt.Budget = &Budget{MaxRounds: 100}
		res, err := TopK(ctx, toy.Graph, q, opt)
		if err != nil {
			t.Fatalf("budgeted TopK under cancellation must finalize, got error: %v", err)
		}
		if res.Stop != StopCanceled || !res.Degraded || res.Rounds != 0 {
			t.Errorf("stop=%s degraded=%v rounds=%d, want canceled/true/0", res.Stop, res.Degraded, res.Rounds)
		}
		if res.CertifiedK != 0 {
			t.Errorf("certified %d positions with no round run", res.CertifiedK)
		}
	})

	t.Run("converged-not-degraded", func(t *testing.T) {
		opt := Options{K: 3, Epsilon: 0.01, Alpha: 0.25, Beta: 0.5, Budget: &Budget{MaxRounds: 500}}
		res, err := TopK(context.Background(), toy.Graph, q, opt)
		if err != nil {
			t.Fatalf("TopK: %v", err)
		}
		if !res.Converged || res.Degraded || res.Stop != StopConverged {
			t.Errorf("loose budget must not degrade a converging query: stop=%s degraded=%v", res.Stop, res.Degraded)
		}
		if res.CertifiedK > len(res.TopK) {
			t.Errorf("CertifiedK %d > %d results", res.CertifiedK, len(res.TopK))
		}
	})
}

// TestBudgetFrontierCapStaysSound pins the deferred-admission rule: with a
// frontier cap of one T-admission per round, the search needs more rounds but
// every certificate it emits along the way stays sound.
func TestBudgetFrontierCapStaysSound(t *testing.T) {
	toy := testgraphs.NewToy()
	q := walk.SingleNode(toy.T1)
	naive, _, err := Naive(context.Background(), toy.Graph, q, Options{K: toy.Graph.NumNodes(), Alpha: 0.25, Beta: 0.5})
	if err != nil {
		t.Fatalf("Naive: %v", err)
	}
	for rounds := 1; rounds <= 30; rounds++ {
		opt := Options{K: 5, Epsilon: 0.01, Alpha: 0.25, Beta: 0.5,
			Budget: &Budget{MaxRounds: rounds, FrontierCap: 1}}
		res, err := TopK(context.Background(), toy.Graph, q, opt)
		if err != nil {
			t.Fatalf("rounds=%d: %v", rounds, err)
		}
		checkCertificate(t, "capped", res, opt, naive)
		if res.Converged {
			return // cap slowed it down but the search still got there
		}
	}
	t.Errorf("frontier-capped search never converged within 30 rounds on the toy graph")
}
