package cliutil

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestServeGracefulShutdown starts a server, holds one slow request in
// flight, cancels the server context, and checks that the slow request still
// completes (the drain) before Serve returns.
func TestServeGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		fmt.Fprint(w, "done")
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	var (
		wg       sync.WaitGroup
		serveErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveErr = Serve(ctx, ln, mux, HTTPServerConfig{ShutdownGrace: 5 * time.Second})
	}()

	var (
		body    []byte
		reqErr  error
		reqDone = make(chan struct{})
	)
	go func() {
		defer close(reqDone)
		resp, err := http.Get("http://" + addr + "/slow")
		if err != nil {
			reqErr = err
			return
		}
		defer resp.Body.Close()
		body, reqErr = io.ReadAll(resp.Body)
	}()

	<-started
	cancel() // begin graceful shutdown with the request still in flight
	time.Sleep(50 * time.Millisecond)
	close(release)

	<-reqDone
	wg.Wait()
	if reqErr != nil {
		t.Fatalf("in-flight request failed during graceful shutdown: %v", reqErr)
	}
	if string(body) != "done" {
		t.Fatalf("in-flight request body = %q, want %q", body, "done")
	}
	if serveErr != nil {
		t.Fatalf("Serve returned %v after a clean drain", serveErr)
	}

	// The listener must be closed: new connections are refused.
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		t.Fatalf("listener still accepting after shutdown")
	}
}

// TestServeForcefulShutdown checks that a request outliving the grace period
// has its context cancelled instead of holding the server up forever.
func TestServeForcefulShutdown(t *testing.T) {
	started := make(chan struct{})
	ctxErr := make(chan error, 1)
	mux := http.NewServeMux()
	mux.HandleFunc("/hang", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-r.Context().Done()
		ctxErr <- r.Context().Err()
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Serve(ctx, ln, mux, HTTPServerConfig{ShutdownGrace: 50 * time.Millisecond})
	}()
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/hang")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	cancel()

	select {
	case err := <-ctxErr:
		if err == nil {
			t.Fatalf("request context not cancelled")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("request context never cancelled after the grace period")
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("Serve should report the forced shutdown")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Serve did not return after the grace period")
	}
}

func TestListenAndServeReportsAddr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- ListenAndServe(ctx, "127.0.0.1:0", http.NewServeMux(), HTTPServerConfig{ShutdownGrace: time.Second},
			func(a net.Addr) { got <- a })
	}()
	select {
	case a := <-got:
		if a.String() == "" {
			t.Fatalf("empty bound address")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("onListen never called")
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("clean shutdown returned %v", err)
	}
}
