package cliutil

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"roundtriprank/internal/obs"
)

// HTTPOptions configures the serving middleware WrapHTTP installs in front
// of a daemon's mux: instrumentation, bounded-in-flight admission control,
// and per-request deadlines. The zero value instruments only.
type HTTPOptions struct {
	// Routes are the path labels instrumentation may emit. Requests whose
	// URL path is not listed are counted under path="other" so an attacker
	// probing random URLs cannot grow the metric cardinality. Empty means
	// every path labels itself (only safe behind a strict mux).
	Routes []string
	// Exempt paths bypass the admission gate and the request deadline while
	// staying instrumented. Health checks and /metrics belong here: an
	// operator must be able to scrape a saturated server.
	Exempt []string
	// MaxInFlight caps concurrently admitted (non-exempt) requests; excess
	// load is shed with 429 Too Many Requests and a Retry-After hint.
	// 0 disables the gate. See docs/TUNING.md for sizing.
	MaxInFlight int
	// RetryAfter is the hint written on shed responses (default 1s,
	// rounded up to whole seconds as the header requires).
	RetryAfter time.Duration
	// RequestTimeout bounds each admitted request's context. 0 leaves the
	// server-level write timeout as the only bound.
	RequestTimeout time.Duration
}

// WrapHTTP wraps next with the shared serving middleware, outermost first:
// instrumentation (so shed requests are counted and timed too), then the
// admission gate, then the per-request deadline. reg may be nil to disable
// instrumentation; the gate and deadline still apply.
//
// With a non-nil reg it registers http_requests_total{path,code},
// http_request_duration_seconds{path} histograms, the http_in_flight gauge
// and the http_requests_shed_total counter.
func WrapHTTP(next http.Handler, reg *obs.Registry, opts HTTPOptions) http.Handler {
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	m := &httpWrapper{
		next:     next,
		reg:      reg,
		opts:     opts,
		routes:   map[string]bool{},
		exempt:   map[string]bool{},
		shed:     &obs.Counter{},
		counters: map[string]*obs.Counter{},
		hists:    map[string]*obs.Histogram{},
	}
	for _, p := range opts.Routes {
		m.routes[p] = true
	}
	for _, p := range opts.Exempt {
		m.exempt[p] = true
	}
	if reg != nil {
		reg.Gauge("http_in_flight", "Requests currently past the admission gate.", "",
			func() float64 { return float64(m.inflight.Load()) })
		m.shed = reg.Counter("http_requests_shed_total",
			"Requests rejected with 429 by the in-flight admission gate.", "")
	}
	return m
}

// httpWrapper is the middleware chain built by WrapHTTP.
type httpWrapper struct {
	next   http.Handler
	reg    *obs.Registry
	opts   HTTPOptions
	routes map[string]bool
	exempt map[string]bool

	inflight atomic.Int64
	shed     *obs.Counter

	mu       sync.Mutex
	counters map[string]*obs.Counter   // keyed path|code
	hists    map[string]*obs.Histogram // keyed path
}

func (m *httpWrapper) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	label := r.URL.Path
	if len(m.routes) > 0 && !m.routes[label] {
		label = "other"
	}
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	if m.reg != nil {
		defer func() {
			m.counter(label, sw.code).Inc()
			m.hist(label).Observe(time.Since(start))
		}()
	}

	if m.exempt[r.URL.Path] {
		m.next.ServeHTTP(sw, r)
		return
	}

	n := m.inflight.Add(1)
	defer m.inflight.Add(-1)
	if m.opts.MaxInFlight > 0 && int64(m.opts.MaxInFlight) < n {
		m.shedOne(sw)
		return
	}

	if m.opts.RequestTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), m.opts.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	m.next.ServeHTTP(sw, r)
}

// shedOne writes the 429 + Retry-After rejection.
func (m *httpWrapper) shedOne(w http.ResponseWriter) {
	m.shed.Inc()
	secs := int(math.Ceil(m.opts.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	fmt.Fprintf(w, "{\"error\":\"server is at its in-flight limit (%d), retry after %ds\"}\n",
		m.opts.MaxInFlight, secs)
}

// counter returns (creating on first use) the requests_total child for one
// route and status code. The set of codes a route emits is small and fixed,
// so the families stay bounded.
func (m *httpWrapper) counter(path string, code int) *obs.Counter {
	key := path + "|" + strconv.Itoa(code)
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[key]
	if c == nil {
		c = m.reg.Counter("http_requests_total", "HTTP requests served, by route and status code.",
			fmt.Sprintf(`path=%q,code="%d"`, path, code))
		m.counters[key] = c
	}
	return c
}

// hist returns (creating on first use) the latency histogram for one route.
func (m *httpWrapper) hist(path string) *obs.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.hists[path]
	if h == nil {
		h = m.reg.Histogram("http_request_duration_seconds",
			"HTTP request latency, by route; includes shed requests.",
			fmt.Sprintf(`path=%q`, path))
		m.hists[path] = h
	}
	return h
}

// statusWriter records the response status for instrumentation. Unwrap keeps
// http.ResponseController features (flush, deadlines) reachable.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
