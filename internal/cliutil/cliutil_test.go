package cliutil

import (
	"path/filepath"
	"strings"
	"testing"

	"roundtriprank/internal/graph"
	"roundtriprank/internal/testgraphs"
)

func TestLoadGraphFromFile(t *testing.T) {
	toy := testgraphs.NewToy()
	path := filepath.Join(t.TempDir(), "toy.gob")
	if err := graph.WriteFile(path, toy.Graph); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	g, err := LoadGraph(path, "", 0)
	if err != nil {
		t.Fatalf("LoadGraph(file): %v", err)
	}
	if g.NumNodes() != toy.Graph.NumNodes() || g.NumEdges() != toy.Graph.NumEdges() {
		t.Errorf("loaded graph has %d nodes / %d edges, want %d / %d",
			g.NumNodes(), g.NumEdges(), toy.Graph.NumNodes(), toy.Graph.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("loaded graph invalid: %v", err)
	}
	// An explicit path wins over a dataset name.
	if _, err := LoadGraph(path, "bibnet", 1); err != nil {
		t.Errorf("LoadGraph(file, dataset): %v", err)
	}
	if _, err := LoadGraph(filepath.Join(t.TempDir(), "missing.gob"), "", 0); err == nil {
		t.Errorf("missing file should error")
	}
}

func TestLoadGraphGenerated(t *testing.T) {
	for _, dataset := range []string{"bibnet", "qlog"} {
		g, err := LoadGraph("", dataset, 0.05)
		if err != nil {
			t.Fatalf("LoadGraph(%s): %v", dataset, err)
		}
		if g.NumNodes() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: generated an empty graph", dataset)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: generated graph invalid: %v", dataset, err)
		}
	}
	if _, err := LoadGraph("", "nope", 1); err == nil || !strings.Contains(err.Error(), "-dataset") {
		t.Errorf("unknown dataset: error = %v, want usage hint", err)
	}
	if _, err := LoadGraph("", "", 1); err == nil {
		t.Errorf("no path and no dataset should error")
	}
}

func TestTypeByName(t *testing.T) {
	toy := testgraphs.NewToy()
	g := toy.Graph

	got, err := TypeByName(g, "paper")
	if err != nil || got != testgraphs.TypePaper {
		t.Errorf("TypeByName(paper) = %v, %v; want %v", got, err, testgraphs.TypePaper)
	}
	// Case-insensitive.
	got, err = TypeByName(g, "VENUE")
	if err != nil || got != testgraphs.TypeVenue {
		t.Errorf("TypeByName(VENUE) = %v, %v; want %v", got, err, testgraphs.TypeVenue)
	}
	// Numeric fallback names resolve for unregistered types.
	got, err = TypeByName(g, "type-7")
	if err != nil || got != graph.Type(7) {
		t.Errorf("TypeByName(type-7) = %v, %v; want 7", got, err)
	}
	if _, err := TypeByName(g, "spaceship"); err == nil {
		t.Errorf("unknown type name should error")
	}
}
