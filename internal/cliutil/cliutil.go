// Package cliutil holds the small helpers shared by the commands under cmd/:
// loading a graph from a gob file or a generated synthetic dataset, resolving
// node-type names against a graph's type registry, and running an HTTP server
// with uniform timeouts and graceful shutdown (rtrankd and gpserver both
// serve through ListenAndServe).
package cliutil

import (
	"fmt"
	"strings"

	"roundtriprank/internal/datasets"
	"roundtriprank/internal/graph"
)

// LoadGraph loads a gob-encoded graph from path, or generates the named
// synthetic dataset ("bibnet" or "qlog") at the given scale when path is
// empty.
func LoadGraph(path, dataset string, scale float64) (*graph.Graph, error) {
	switch {
	case path != "":
		return graph.ReadFile(path)
	case dataset == "bibnet":
		net, err := datasets.GenerateBibNet(datasets.ScaledBibNetConfig(scale))
		if err != nil {
			return nil, err
		}
		return net.Graph, nil
	case dataset == "qlog":
		qlog, err := datasets.GenerateQLog(datasets.ScaledQLogConfig(scale))
		if err != nil {
			return nil, err
		}
		return qlog.Graph, nil
	default:
		return nil, fmt.Errorf("provide either -graph or -dataset bibnet|qlog")
	}
}

// TypeByName resolves a node-type name (case-insensitive) against the graph's
// type registry; the numeric fallback names ("type-3") also resolve.
func TypeByName(g *graph.Graph, name string) (graph.Type, error) {
	for t := 0; t < 256; t++ {
		if strings.EqualFold(g.TypeName(graph.Type(t)), name) {
			return graph.Type(t), nil
		}
	}
	return 0, fmt.Errorf("unknown node type %q", name)
}
