package cliutil

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"roundtriprank/internal/obs"
)

// TestAdmissionGateSheds pins the deterministic shed path: with a limit of 2
// and two requests parked inside the handler, the third is rejected with
// 429, a Retry-After hint, and a JSON body — and the shed counter and
// per-code request counters record all three.
func TestAdmissionGateSheds(t *testing.T) {
	reg := obs.NewRegistry("test")
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	blocking := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	h := WrapHTTP(blocking, reg, HTTPOptions{
		Routes:      []string{"/rank"},
		MaxInFlight: 2,
		RetryAfter:  1500 * time.Millisecond, // must round up to 2s
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/rank")
			if err != nil {
				t.Errorf("admitted request: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("admitted request status = %d", resp.StatusCode)
			}
		}()
	}
	<-entered
	<-entered

	resp, err := http.Get(srv.URL + "/rank")
	if err != nil {
		t.Fatalf("shed request: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}

	close(release)
	wg.Wait()

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	body := sb.String()
	for _, want := range []string{
		"test_http_requests_shed_total 1",
		`test_http_requests_total{path="/rank",code="200"} 2`,
		`test_http_requests_total{path="/rank",code="429"} 1`,
		"test_http_in_flight 0",
		`test_http_request_duration_seconds_count{path="/rank"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestExemptPathsBypassGate checks exempt paths are served even when the
// gate is saturated — /metrics must be scrapeable from an overloaded server.
func TestExemptPathsBypassGate(t *testing.T) {
	reg := obs.NewRegistry("test")
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	h := WrapHTTP(mux, reg, HTTPOptions{
		Routes:      []string{"/slow", "/healthz"},
		Exempt:      []string{"/healthz"},
		MaxInFlight: 1,
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(srv.URL + "/slow")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("exempt request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("exempt request status = %d while gate saturated, want 200", resp.StatusCode)
	}
	close(release)
	<-done
}

// TestRequestTimeoutDeadline checks the middleware attaches a per-request
// deadline that actually fires.
func TestRequestTimeoutDeadline(t *testing.T) {
	sawDeadline := make(chan error, 1)
	h := WrapHTTP(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, ok := r.Context().Deadline()
		if !ok {
			sawDeadline <- fmt.Errorf("no deadline on request context")
			return
		}
		select {
		case <-r.Context().Done():
			sawDeadline <- r.Context().Err()
		case <-time.After(5 * time.Second):
			sawDeadline <- fmt.Errorf("deadline never fired")
		}
	}), nil, HTTPOptions{RequestTimeout: 30 * time.Millisecond})
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp.Body.Close()
	if err := <-sawDeadline; err != context.DeadlineExceeded {
		t.Errorf("handler context error = %v, want deadline exceeded", err)
	}
}

// TestUnknownRouteCollapsesLabel checks unlisted paths are counted under
// path="other" so probing cannot grow metric cardinality.
func TestUnknownRouteCollapsesLabel(t *testing.T) {
	reg := obs.NewRegistry("test")
	h := WrapHTTP(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	}), reg, HTTPOptions{Routes: []string{"/rank"}})
	srv := httptest.NewServer(h)
	defer srv.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/probe/" + strconv.Itoa(i))
		if err != nil {
			t.Fatalf("request: %v", err)
		}
		resp.Body.Close()
	}
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if want := `test_http_requests_total{path="other",code="404"} 3`; !strings.Contains(sb.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, sb.String())
	}
	if strings.Contains(sb.String(), "probe") {
		t.Errorf("probed path leaked into metric labels:\n%s", sb.String())
	}
}

// TestGateConcurrency hammers a limited gate from many goroutines — the
// -race check for the admission path — and verifies accounting adds up.
func TestGateConcurrency(t *testing.T) {
	reg := obs.NewRegistry("test")
	h := WrapHTTP(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(time.Millisecond)
	}), reg, HTTPOptions{Routes: []string{"/x"}, MaxInFlight: 4})
	srv := httptest.NewServer(h)
	defer srv.Close()

	const n = 64
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/x")
			if err != nil {
				t.Errorf("request: %v", err)
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		}()
	}
	wg.Wait()
	close(codes)
	ok, shed := 0, 0
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	if ok+shed != n {
		t.Errorf("accounted %d responses, want %d", ok+shed, n)
	}
	if ok == 0 {
		t.Error("every request was shed; the gate should admit up to its limit")
	}
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if want := fmt.Sprintf(`test_http_request_duration_seconds_count{path="/x"} %d`, n); !strings.Contains(sb.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, sb.String())
	}
}
