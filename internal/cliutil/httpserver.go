package cliutil

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// HTTPServerConfig bundles the timeout and shutdown policy shared by the
// repo's HTTP daemons (rtrankd, gpserver). The zero value gives the defaults
// below.
type HTTPServerConfig struct {
	// ReadHeaderTimeout bounds reading a request's headers (default 5s).
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading a whole request, body included (default
	// 1m — stripe uploads to gpserver can be large).
	ReadTimeout time.Duration
	// WriteTimeout bounds writing a response, measured from the end of the
	// header read; it must cover the slowest expected query (default 5m).
	WriteTimeout time.Duration
	// IdleTimeout bounds keep-alive connections between requests (default 2m).
	IdleTimeout time.Duration
	// ShutdownGrace is how long a graceful shutdown waits for in-flight
	// requests before forcing connections closed (default 10s).
	ShutdownGrace time.Duration
}

func (c HTTPServerConfig) withDefaults() HTTPServerConfig {
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Minute
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	return c
}

// ListenAndServe listens on addr and serves handler until ctx is cancelled,
// then shuts down gracefully: it stops accepting connections, waits up to
// ShutdownGrace for in-flight requests to drain, and only then returns. The
// onListen callback (optional) receives the bound address — useful with a
// ":0" ephemeral port. A clean shutdown returns nil.
func ListenAndServe(ctx context.Context, addr string, handler http.Handler, cfg HTTPServerConfig, onListen func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	return Serve(ctx, ln, handler, cfg)
}

// Serve is ListenAndServe over an existing listener; it takes ownership of
// ln.
func Serve(ctx context.Context, ln net.Listener, handler http.Handler, cfg HTTPServerConfig) error {
	cfg = cfg.withDefaults()
	// Requests keep running through a graceful shutdown (that is the point of
	// draining), so their base context is cancelled only once the grace
	// period expires and shutdown turns forceful.
	reqCtx, cancelReqs := context.WithCancel(context.Background())
	defer cancelReqs()
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
		ReadTimeout:       cfg.ReadTimeout,
		WriteTimeout:      cfg.WriteTimeout,
		IdleTimeout:       cfg.IdleTimeout,
		BaseContext:       func(net.Listener) context.Context { return reqCtx },
	}

	drained := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), cfg.ShutdownGrace)
		defer cancel()
		err := srv.Shutdown(shutCtx)
		cancelReqs() // abort whatever outlived the grace period
		drained <- err
	}()

	err := srv.Serve(ln)
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Serve returns as soon as Shutdown starts; wait for the drain of
	// in-flight requests to finish before reporting the server down.
	return <-drained
}
