// Package metrics implements the evaluation measures used in Sect. VI of the
// RoundTripRank paper: NDCG@K with ungraded (binary) judgments, precision@K,
// Kendall's tau between two rankings, two-tailed paired t-tests for
// statistical significance, and mean / confidence-interval helpers for the
// scalability study.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// NDCGAtK computes NDCG@K with ungraded judgments: a ranked item gains 1 if it
// is relevant and 0 otherwise, discounted by log2(rank+1); the ideal DCG
// assumes all |relevant| items (capped at K) are ranked first. The ranking is
// a list of item identifiers in rank order; relevant is the ground-truth set.
// It returns 0 when there are no relevant items.
func NDCGAtK[T comparable](ranking []T, relevant map[T]bool, k int) float64 {
	if k <= 0 || len(relevant) == 0 {
		return 0
	}
	if k > len(ranking) {
		k = len(ranking)
	}
	dcg := 0.0
	for i := 0; i < k; i++ {
		if relevant[ranking[i]] {
			dcg += 1.0 / math.Log2(float64(i)+2)
		}
	}
	ideal := 0.0
	nRel := len(relevant)
	if nRel > k {
		nRel = k
	}
	for i := 0; i < nRel; i++ {
		ideal += 1.0 / math.Log2(float64(i)+2)
	}
	if ideal == 0 {
		return 0
	}
	return dcg / ideal
}

// PrecisionAtK computes the fraction of the top-K ranked items that are
// relevant. When the ranking holds fewer than K items the denominator is still
// K, matching the usual convention for truncated rankings.
func PrecisionAtK[T comparable](ranking []T, relevant map[T]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	hits := 0
	limit := k
	if limit > len(ranking) {
		limit = len(ranking)
	}
	for i := 0; i < limit; i++ {
		if relevant[ranking[i]] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallAtK computes the fraction of relevant items found in the top K.
func RecallAtK[T comparable](ranking []T, relevant map[T]bool, k int) float64 {
	if k <= 0 || len(relevant) == 0 {
		return 0
	}
	hits := 0
	limit := k
	if limit > len(ranking) {
		limit = len(ranking)
	}
	for i := 0; i < limit; i++ {
		if relevant[ranking[i]] {
			hits++
		}
	}
	return float64(hits) / float64(len(relevant))
}

// KendallTau computes Kendall's tau-a rank correlation between two rankings of
// the same item set, restricted to the items present in both. Items are
// compared by their positions; tau = (concordant − discordant) / total pairs.
// It returns an error when fewer than two common items exist.
func KendallTau[T comparable](a, b []T) (float64, error) {
	posA := make(map[T]int, len(a))
	for i, x := range a {
		if _, dup := posA[x]; !dup {
			posA[x] = i
		}
	}
	posB := make(map[T]int, len(b))
	for i, x := range b {
		if _, dup := posB[x]; !dup {
			posB[x] = i
		}
	}
	var common []T
	for x := range posA {
		if _, ok := posB[x]; ok {
			common = append(common, x)
		}
	}
	if len(common) < 2 {
		return 0, fmt.Errorf("metrics: need at least two common items for Kendall's tau, have %d", len(common))
	}
	// Deterministic order for reproducibility.
	sort.Slice(common, func(i, j int) bool { return posA[common[i]] < posA[common[j]] })
	concordant, discordant := 0, 0
	for i := 0; i < len(common); i++ {
		for j := i + 1; j < len(common); j++ {
			da := posA[common[i]] - posA[common[j]]
			db := posB[common[i]] - posB[common[j]]
			switch {
			case da*db > 0:
				concordant++
			case da*db < 0:
				discordant++
			}
		}
	}
	total := len(common) * (len(common) - 1) / 2
	return float64(concordant-discordant) / float64(total), nil
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// ConfidenceInterval returns the half-width of the two-sided confidence
// interval of the mean of xs at the given confidence level (e.g. 0.99 for the
// 99% intervals reported in Fig. 12), using the Student t distribution.
func ConfidenceInterval(xs []float64, level float64) float64 {
	n := len(xs)
	if n < 2 || level <= 0 || level >= 1 {
		return 0
	}
	se := StdDev(xs) / math.Sqrt(float64(n))
	tcrit := studentTQuantile(1-(1-level)/2, float64(n-1))
	return tcrit * se
}

// PairedTTest performs a two-tailed paired t-test on two equally long samples
// and returns the t statistic and the p-value. It errors when the samples have
// different lengths or fewer than two pairs.
func PairedTTest(a, b []float64) (tStat, pValue float64, err error) {
	if len(a) != len(b) {
		return 0, 0, fmt.Errorf("metrics: paired t-test requires equal-length samples (%d vs %d)", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, 0, fmt.Errorf("metrics: paired t-test requires at least two pairs")
	}
	diffs := make([]float64, n)
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	meanD := Mean(diffs)
	sd := StdDev(diffs)
	if sd == 0 {
		if meanD == 0 {
			return 0, 1, nil
		}
		return math.Inf(sign(meanD)), 0, nil
	}
	tStat = meanD / (sd / math.Sqrt(float64(n)))
	df := float64(n - 1)
	pValue = 2 * studentTSurvival(math.Abs(tStat), df)
	return tStat, pValue, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTSurvival returns P(T > t) for a Student t distribution with df
// degrees of freedom, computed via the regularized incomplete beta function.
func studentTSurvival(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * regularizedIncompleteBeta(df/2, 0.5, x)
}

// studentTQuantile returns the p-quantile of the Student t distribution with
// df degrees of freedom via bisection on the CDF. p must be in (0.5, 1).
func studentTQuantile(p, df float64) float64 {
	if p <= 0.5 {
		return 0
	}
	lo, hi := 0.0, 1e6
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		cdf := 1 - studentTSurvival(mid, df)
		if cdf < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10*(1+lo) {
			break
		}
	}
	return (lo + hi) / 2
}

// regularizedIncompleteBeta computes I_x(a, b) using the continued-fraction
// expansion (Numerical Recipes style), accurate to ~1e-12 for the parameter
// ranges used by the t-test.
func regularizedIncompleteBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lnBeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lnBeta) / a
	if x > (a+1)/(a+b+2) {
		// Use the symmetry relation for faster convergence.
		return 1 - regularizedIncompleteBeta(b, a, 1-x)
	}
	// Lentz's algorithm for the continued fraction.
	const tiny = 1e-300
	c := 1.0
	d := 1 - (a+b)*x/(a+1)
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	result := d
	for m := 1; m <= 300; m++ {
		fm := float64(m)
		// Even step.
		numer := fm * (b - fm) * x / ((a + 2*fm - 1) * (a + 2*fm))
		d = 1 + numer*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + numer/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		result *= d * c
		// Odd step.
		numer = -(a + fm) * (a + b + fm) * x / ((a + 2*fm) * (a + 2*fm + 1))
		d = 1 + numer*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + numer/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		delta := d * c
		result *= delta
		if math.Abs(delta-1) < 1e-14 {
			break
		}
	}
	return front * result
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
