package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNDCGAtK(t *testing.T) {
	rel := map[string]bool{"a": true, "b": true}
	// Perfect ranking.
	if got := NDCGAtK([]string{"a", "b", "c"}, rel, 3); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect NDCG = %g, want 1", got)
	}
	// Relevant item at rank 2 only: DCG = 1/log2(3), ideal = 1 (only one slot
	// needed? no: two relevant, ideal@2 = 1 + 1/log2(3)).
	got := NDCGAtK([]string{"x", "a", "y"}, rel, 3)
	want := (1 / math.Log2(3)) / (1 + 1/math.Log2(3))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("NDCG = %g, want %g", got, want)
	}
	// No relevant items in ranking.
	if got := NDCGAtK([]string{"x", "y"}, rel, 2); got != 0 {
		t.Errorf("NDCG with no hits = %g, want 0", got)
	}
	// Empty relevance set or k<=0.
	if NDCGAtK([]string{"a"}, map[string]bool{}, 5) != 0 || NDCGAtK([]string{"a"}, rel, 0) != 0 {
		t.Errorf("degenerate NDCG should be 0")
	}
	// k larger than ranking length is clipped.
	if got := NDCGAtK([]string{"a"}, rel, 10); got <= 0 {
		t.Errorf("clipped NDCG should be positive")
	}
}

func TestPrecisionRecallAtK(t *testing.T) {
	rel := map[int]bool{1: true, 2: true, 3: true}
	ranking := []int{1, 9, 2, 8, 7}
	if got := PrecisionAtK(ranking, rel, 4); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P@4 = %g, want 0.5", got)
	}
	if got := RecallAtK(ranking, rel, 4); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("R@4 = %g, want 2/3", got)
	}
	if PrecisionAtK(ranking, rel, 0) != 0 || RecallAtK(ranking, rel, 0) != 0 {
		t.Errorf("k=0 should give 0")
	}
	// Short ranking: denominator is still k for precision.
	if got := PrecisionAtK([]int{1}, rel, 5); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("P@5 with short ranking = %g, want 0.2", got)
	}
}

func TestKendallTau(t *testing.T) {
	a := []string{"a", "b", "c", "d"}
	if tau, err := KendallTau(a, a); err != nil || math.Abs(tau-1) > 1e-12 {
		t.Errorf("identical rankings tau = %g (%v), want 1", tau, err)
	}
	rev := []string{"d", "c", "b", "a"}
	if tau, err := KendallTau(a, rev); err != nil || math.Abs(tau+1) > 1e-12 {
		t.Errorf("reversed rankings tau = %g (%v), want -1", tau, err)
	}
	// One swap among 4 items: 5 concordant, 1 discordant => tau = 4/6.
	swapped := []string{"b", "a", "c", "d"}
	if tau, err := KendallTau(a, swapped); err != nil || math.Abs(tau-4.0/6) > 1e-12 {
		t.Errorf("one-swap tau = %g (%v), want %g", tau, err, 4.0/6)
	}
	// Partial overlap restricts to common items.
	if tau, err := KendallTau([]string{"a", "b", "z"}, []string{"b", "a", "y"}); err != nil || math.Abs(tau+1) > 1e-12 {
		t.Errorf("common-item tau = %g (%v), want -1", tau, err)
	}
	if _, err := KendallTau([]string{"a"}, []string{"b"}); err == nil {
		t.Errorf("disjoint rankings should error")
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-12 {
		t.Errorf("Mean = %g, want 5", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("Variance = %g, want %g", v, 32.0/7)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %g", s)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Errorf("degenerate stats should be 0")
	}
}

func TestConfidenceInterval(t *testing.T) {
	xs := []float64{10, 12, 9, 11, 10, 10, 11, 9, 10, 12}
	ci95 := ConfidenceInterval(xs, 0.95)
	ci99 := ConfidenceInterval(xs, 0.99)
	if ci95 <= 0 || ci99 <= 0 {
		t.Fatalf("confidence intervals should be positive: %g %g", ci95, ci99)
	}
	if ci99 <= ci95 {
		t.Errorf("99%% interval (%g) should be wider than 95%% (%g)", ci99, ci95)
	}
	// Reference value: mean 10.4, sd ~1.075, se ~0.34, t(9, 0.975) ~2.262 =>
	// ci95 ~0.769.
	if math.Abs(ci95-0.769) > 0.01 {
		t.Errorf("ci95 = %g, want ~0.769", ci95)
	}
	if ConfidenceInterval([]float64{1}, 0.95) != 0 || ConfidenceInterval(xs, 0) != 0 || ConfidenceInterval(xs, 1) != 0 {
		t.Errorf("degenerate confidence intervals should be 0")
	}
}

func TestPairedTTest(t *testing.T) {
	a := []float64{88, 82, 84, 93, 75, 78, 84, 87, 95, 91}
	b := []float64{81, 84, 74, 88, 68, 74, 87, 82, 90, 86}
	tStat, p, err := PairedTTest(a, b)
	if err != nil {
		t.Fatalf("PairedTTest: %v", err)
	}
	// Hand-computed reference: mean difference 4.3, sd 3.9735, t = 3.4221;
	// two-tailed p with 9 degrees of freedom ~ 0.0076.
	if math.Abs(tStat-3.4221) > 0.001 {
		t.Errorf("t statistic = %g, want ~3.4221", tStat)
	}
	if math.Abs(p-0.0076) > 0.0005 {
		t.Errorf("p-value = %g, want ~0.0076", p)
	}
	// Identical samples: t=0, p=1.
	if ts, pv, err := PairedTTest(a, a); err != nil || ts != 0 || pv != 1 {
		t.Errorf("identical samples: t=%g p=%g err=%v", ts, pv, err)
	}
	// Constant nonzero difference: infinite t, p=0.
	c := make([]float64, len(a))
	for i := range a {
		c[i] = a[i] + 1
	}
	if ts, pv, err := PairedTTest(c, a); err != nil || !math.IsInf(ts, 1) || pv != 0 {
		t.Errorf("constant difference: t=%g p=%g err=%v", ts, pv, err)
	}
	if _, _, err := PairedTTest(a, a[:3]); err == nil {
		t.Errorf("length mismatch should error")
	}
	if _, _, err := PairedTTest([]float64{1}, []float64{2}); err == nil {
		t.Errorf("single pair should error")
	}
}

func TestStudentTSurvivalReference(t *testing.T) {
	// Reference values: P(T > 2.262) with 9 df ~ 0.025; P(T > 1.96) with
	// large df ~ 0.025.
	if got := studentTSurvival(2.262, 9); math.Abs(got-0.025) > 0.001 {
		t.Errorf("survival(2.262, 9) = %g, want ~0.025", got)
	}
	if got := studentTSurvival(1.96, 10000); math.Abs(got-0.025) > 0.001 {
		t.Errorf("survival(1.96, 10000) = %g, want ~0.025", got)
	}
	if got := studentTSurvival(0, 5); got != 0.5 {
		t.Errorf("survival(0) = %g, want 0.5", got)
	}
	if q := studentTQuantile(0.3, 5); q != 0 {
		t.Errorf("quantile below 0.5 should return 0")
	}
}

// Property: NDCG and precision are always within [0,1], and NDCG is 1 whenever
// all relevant items occupy the top ranks.
func TestQuickNDCGRange(t *testing.T) {
	f := func(seed int64, kRaw, nRaw, relRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%50)
		k := 1 + int(kRaw%20)
		nRel := 1 + int(relRaw)%n
		ranking := rng.Perm(n)
		relevant := map[int]bool{}
		for len(relevant) < nRel {
			relevant[rng.Intn(n)] = true
		}
		ndcg := NDCGAtK(ranking, relevant, k)
		prec := PrecisionAtK(ranking, relevant, k)
		if ndcg < 0 || ndcg > 1+1e-12 || prec < 0 || prec > 1+1e-12 {
			return false
		}
		// Ideal ranking: relevant items first.
		ideal := make([]int, 0, n)
		for x := range relevant {
			ideal = append(ideal, x)
		}
		sort.Ints(ideal)
		for _, x := range ranking {
			if !relevant[x] {
				ideal = append(ideal, x)
			}
		}
		return math.Abs(NDCGAtK(ideal, relevant, k)-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Kendall's tau is symmetric up to sign conventions and bounded in
// [-1, 1].
func TestQuickKendallTauProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw%30)
		a := rng.Perm(n)
		b := rng.Perm(n)
		tau1, err1 := KendallTau(a, b)
		tau2, err2 := KendallTau(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		if math.Abs(tau1-tau2) > 1e-12 {
			return false
		}
		return tau1 >= -1-1e-12 && tau1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
