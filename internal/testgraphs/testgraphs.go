// Package testgraphs provides small, hand-constructed graphs used across the
// test suites and examples, most importantly the toy bibliographic network of
// Fig. 2 in the RoundTripRank paper.
package testgraphs

import "roundtriprank/internal/graph"

// Node types used by the toy graphs.
const (
	TypeTerm  graph.Type = 1
	TypePaper graph.Type = 2
	TypeVenue graph.Type = 3
)

// Toy holds the toy bibliographic network of Fig. 2 together with named node
// handles for the assertions used in tests (Fig. 4 reproduces RoundTripRank on
// this graph with constant walk lengths L = L' = 2).
type Toy struct {
	Graph *graph.Graph
	T1    graph.NodeID // query term "spatio"
	T2    graph.NodeID // off-topic term "transaction"
	P     [7]graph.NodeID
	V1    graph.NodeID
	V2    graph.NodeID
	V3    graph.NodeID
}

// NewToy constructs the Fig. 2 toy graph: term t1 appears in papers p1..p5;
// term t2 appears in p6, p7; venue v1 accepts p1, p2, p6, p7; venue v2 accepts
// p3, p4; venue v3 accepts p5. All edges are undirected with weight 1.
func NewToy() *Toy {
	b := graph.NewBuilder()
	b.RegisterType(TypeTerm, "term")
	b.RegisterType(TypePaper, "paper")
	b.RegisterType(TypeVenue, "venue")

	t := &Toy{}
	t.T1 = b.AddNode(TypeTerm, "term:spatio")
	t.T2 = b.AddNode(TypeTerm, "term:transaction")
	for i := 0; i < 7; i++ {
		t.P[i] = b.AddNode(TypePaper, "paper:p"+string(rune('1'+i)))
	}
	t.V1 = b.AddNode(TypeVenue, "venue:v1")
	t.V2 = b.AddNode(TypeVenue, "venue:v2")
	t.V3 = b.AddNode(TypeVenue, "venue:v3")

	// Term-paper edges.
	for i := 0; i < 5; i++ {
		b.MustAddUndirectedEdge(t.T1, t.P[i], 1)
	}
	b.MustAddUndirectedEdge(t.T2, t.P[5], 1)
	b.MustAddUndirectedEdge(t.T2, t.P[6], 1)

	// Paper-venue edges.
	b.MustAddUndirectedEdge(t.P[0], t.V1, 1)
	b.MustAddUndirectedEdge(t.P[1], t.V1, 1)
	b.MustAddUndirectedEdge(t.P[5], t.V1, 1)
	b.MustAddUndirectedEdge(t.P[6], t.V1, 1)
	b.MustAddUndirectedEdge(t.P[2], t.V2, 1)
	b.MustAddUndirectedEdge(t.P[3], t.V2, 1)
	b.MustAddUndirectedEdge(t.P[4], t.V3, 1)

	t.Graph = b.MustBuild()
	return t
}

// Line returns a small directed line graph a0 -> a1 -> ... -> a(n-1) with unit
// weights, useful for testing reachability asymmetries (f > 0, t = 0).
func Line(n int) *graph.Graph {
	b := graph.NewBuilder()
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddNode(graph.Untyped, "line:"+itoa(i))
	}
	for i := 0; i+1 < n; i++ {
		b.MustAddEdge(ids[i], ids[i+1], 1)
	}
	return b.MustBuild()
}

// Cycle returns a directed cycle of n nodes with unit weights; it is strongly
// connected, so both F-Rank and T-Rank are positive everywhere.
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder()
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddNode(graph.Untyped, "cycle:"+itoa(i))
	}
	for i := 0; i < n; i++ {
		b.MustAddEdge(ids[i], ids[(i+1)%n], 1)
	}
	return b.MustBuild()
}

// Star returns an undirected star with a hub and n leaves.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder()
	hub := b.AddNode(graph.Untyped, "hub")
	for i := 0; i < n; i++ {
		leaf := b.AddNode(graph.Untyped, "leaf:"+itoa(i))
		b.MustAddUndirectedEdge(hub, leaf, 1)
	}
	return b.MustBuild()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [12]byte
	pos := len(buf)
	neg := i < 0
	if neg {
		i = -i
	}
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}
