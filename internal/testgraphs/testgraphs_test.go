package testgraphs

import (
	"testing"

	"roundtriprank/internal/graph"
)

func TestToyMatchesFig2(t *testing.T) {
	toy := NewToy()
	g := toy.Graph
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumNodes() != 12 {
		t.Errorf("toy graph has %d nodes, want 12 (2 terms, 7 papers, 3 venues)", g.NumNodes())
	}
	// All edges are undirected: 7 term-paper + 7 paper-venue pairs.
	if g.NumEdges() != 28 {
		t.Errorf("toy graph has %d directed edges, want 28", g.NumEdges())
	}
	if got := g.CountOfType(TypeTerm); got != 2 {
		t.Errorf("%d terms, want 2", got)
	}
	if got := g.CountOfType(TypePaper); got != 7 {
		t.Errorf("%d papers, want 7", got)
	}
	if got := g.CountOfType(TypeVenue); got != 3 {
		t.Errorf("%d venues, want 3", got)
	}
	// t1 tags papers p1..p5, both directions; t2 tags p6, p7.
	for i := 0; i < 5; i++ {
		if !g.HasEdge(toy.T1, toy.P[i]) || !g.HasEdge(toy.P[i], toy.T1) {
			t.Errorf("missing t1 <-> p%d edge", i+1)
		}
	}
	for i := 5; i < 7; i++ {
		if g.HasEdge(toy.T1, toy.P[i]) {
			t.Errorf("t1 should not tag p%d", i+1)
		}
		if !g.HasEdge(toy.T2, toy.P[i]) {
			t.Errorf("missing t2 -> p%d edge", i+1)
		}
	}
	// Venue memberships: v1 = {p1, p2, p6, p7}, v2 = {p3, p4}, v3 = {p5}.
	if g.InDegree(toy.V1) != 4 || g.InDegree(toy.V2) != 2 || g.InDegree(toy.V3) != 1 {
		t.Errorf("venue in-degrees = %d/%d/%d, want 4/2/1",
			g.InDegree(toy.V1), g.InDegree(toy.V2), g.InDegree(toy.V3))
	}
	// Labels resolve back to the same nodes.
	if g.NodeByLabel("term:spatio") != toy.T1 || g.NodeByLabel("venue:v2") != toy.V2 {
		t.Errorf("label lookup does not match handles")
	}
	if g.TypeName(TypePaper) != "paper" {
		t.Errorf("TypeName(paper) = %q", g.TypeName(TypePaper))
	}
}

func TestLine(t *testing.T) {
	g := Line(5)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Fatalf("Line(5): %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	for v := 0; v < 4; v++ {
		if !g.HasEdge(graph.NodeID(v), graph.NodeID(v+1)) {
			t.Errorf("missing edge %d -> %d", v, v+1)
		}
		if g.HasEdge(graph.NodeID(v+1), graph.NodeID(v)) {
			t.Errorf("line must be directed, found back edge %d -> %d", v+1, v)
		}
	}
	if g.OutDegree(4) != 0 {
		t.Errorf("line end should be dangling, out-degree %d", g.OutDegree(4))
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(6)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumNodes() != 6 || g.NumEdges() != 6 {
		t.Fatalf("Cycle(6): %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	for v := 0; v < 6; v++ {
		if g.OutDegree(graph.NodeID(v)) != 1 || g.InDegree(graph.NodeID(v)) != 1 {
			t.Errorf("cycle node %d degrees %d/%d, want 1/1",
				v, g.OutDegree(graph.NodeID(v)), g.InDegree(graph.NodeID(v)))
		}
	}
	if !graph.IsStronglyReachable(g, 0) {
		t.Errorf("cycle should be strongly connected")
	}
}

func TestStar(t *testing.T) {
	g := Star(4)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumNodes() != 5 || g.NumEdges() != 8 {
		t.Fatalf("Star(4): %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	hub := g.NodeByLabel("hub")
	if hub == graph.NoNode || g.OutDegree(hub) != 4 || g.InDegree(hub) != 4 {
		t.Errorf("hub degrees wrong: out %d in %d", g.OutDegree(hub), g.InDegree(hub))
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 10: "10", 12345: "12345", -3: "-3", -120: "-120"}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Errorf("itoa(%d) = %q, want %q", in, got, want)
		}
	}
}
