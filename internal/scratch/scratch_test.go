package scratch

import (
	"math/rand"
	"testing"

	"roundtriprank/internal/graph"
)

func TestFloatsBasics(t *testing.T) {
	var m Floats
	m.Reset(8)
	if m.Len() != 0 || m.Has(3) || m.Get(3) != 0 {
		t.Fatalf("fresh map should be empty")
	}
	m.Set(3, 1.5)
	if got := m.Add(3, 0.5); got != 2 {
		t.Errorf("Add returned %g, want 2", got)
	}
	m.Add(5, 7)
	if m.Len() != 2 || !m.Has(3) || !m.Has(5) || m.Has(4) {
		t.Errorf("membership wrong: len=%d", m.Len())
	}
	if m.Get(3) != 2 || m.Get(5) != 7 || m.Get(0) != 0 {
		t.Errorf("values wrong: %g %g %g", m.Get(3), m.Get(5), m.Get(0))
	}
	want := []graph.NodeID{3, 5}
	got := m.Touched()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Touched = %v, want %v (insertion order)", got, want)
	}
	sum := 0.0
	m.Each(func(_ graph.NodeID, x float64) { sum += x })
	if sum != 9 {
		t.Errorf("Each sum = %g, want 9", sum)
	}

	// Reset empties in O(1): old values must be unreadable.
	m.Reset(8)
	if m.Len() != 0 || m.Has(3) || m.Get(5) != 0 {
		t.Errorf("Reset should empty the map")
	}
	// Setting zero still marks presence (mirrors map semantics where a key
	// can hold value 0).
	m.Set(2, 0)
	if !m.Has(2) || m.Len() != 1 {
		t.Errorf("zero-valued slot should be present")
	}
}

func TestFloatsResize(t *testing.T) {
	var m Floats
	m.Reset(4)
	m.Set(3, 1)
	// Grow: new slots absent, old slots invalidated by the generation bump.
	m.Reset(10)
	for v := graph.NodeID(0); v < 10; v++ {
		if m.Has(v) {
			t.Fatalf("slot %d should be absent after growing Reset", v)
		}
	}
	m.Set(9, 2)
	// Shrink below, then grow again within capacity: the re-exposed tail
	// must still be absent.
	m.Reset(2)
	m.Reset(10)
	if m.Has(9) {
		t.Errorf("slot 9 leaked through shrink/grow")
	}
}

func TestFloatsGenerationWraparound(t *testing.T) {
	var m Floats
	m.Reset(4)
	m.Set(1, 42)
	m.gen = ^uint32(0) // force the next Reset to wrap
	m.Reset(4)
	if m.gen != 1 {
		t.Fatalf("gen after wraparound = %d, want 1", m.gen)
	}
	if m.Has(1) || m.Get(1) != 0 {
		t.Errorf("wraparound must not resurrect old entries")
	}
	m.Set(2, 7)
	if !m.Has(2) || m.Get(2) != 7 {
		t.Errorf("map unusable after wraparound")
	}
}

func TestIntsBasics(t *testing.T) {
	var m Ints
	m.Reset(6)
	if m.Get(2) != 0 {
		t.Fatalf("fresh Ints should read zero")
	}
	m.Set(2, 5)
	if got := m.Add(2, -2); got != 3 {
		t.Errorf("Add returned %d, want 3", got)
	}
	if got := m.Add(4, 1); got != 1 {
		t.Errorf("Add on absent slot returned %d, want 1", got)
	}
	m.Reset(6)
	if m.Get(2) != 0 || m.Get(4) != 0 {
		t.Errorf("Reset should empty Ints")
	}
}

func TestBoundsBasics(t *testing.T) {
	var b Bounds
	b.Reset(8)
	if b.Len() != 0 || b.Seen(1) {
		t.Fatalf("fresh Bounds should be empty")
	}
	if _, ok := b.Upper(1); ok {
		t.Fatalf("Upper on unseen should report absent")
	}
	b.Set(1, 0.2, 0.9)
	b.Set(4, 0, 1)
	b.Set(1, 0.3, 0.8) // update in place, no duplicate in touched
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	lo, up, seen := b.Get(1)
	if !seen || lo != 0.3 || up != 0.8 {
		t.Errorf("Get(1) = %g %g %v", lo, up, seen)
	}
	if b.Lower(7) != 0 {
		t.Errorf("Lower on unseen should be 0")
	}
	order := b.Touched()
	if len(order) != 2 || order[0] != 1 || order[1] != 4 {
		t.Errorf("Touched = %v, want [1 4]", order)
	}
	n := 0
	b.Each(func(v graph.NodeID, lo, up float64) { n++ })
	if n != 2 {
		t.Errorf("Each visited %d, want 2", n)
	}
	b.Reset(8)
	if b.Seen(1) || b.Len() != 0 {
		t.Errorf("Reset should empty Bounds")
	}
}

func TestHeapBasics(t *testing.T) {
	var h Heap
	h.Reset(10)
	if _, _, ok := h.Peek(); ok {
		t.Fatalf("empty heap should not peek")
	}
	if _, _, ok := h.Pop(); ok {
		t.Fatalf("empty heap should not pop")
	}
	h.Update(3, 1.0)
	h.Update(7, 5.0)
	h.Update(1, 3.0)
	if v, p, _ := h.Peek(); v != 7 || p != 5 {
		t.Fatalf("Peek = %d/%g, want 7/5", v, p)
	}
	// Decrease-key in place: no duplicate entries, new max surfaces.
	h.Update(7, 0.5)
	if h.Len() != 3 {
		t.Fatalf("Len = %d after decrease-key, want 3", h.Len())
	}
	if v, _, _ := h.Peek(); v != 1 {
		t.Fatalf("Peek after decrease = %d, want 1", v)
	}
	// Increase-key.
	h.Update(3, 9)
	if v, _, _ := h.Peek(); v != 3 {
		t.Fatalf("Peek after increase = %d, want 3", v)
	}
	if p, ok := h.Priority(7); !ok || p != 0.5 {
		t.Errorf("Priority(7) = %g/%v", p, ok)
	}
	if !h.Remove(7) || h.Remove(7) || h.Contains(7) {
		t.Errorf("Remove should delete exactly once")
	}
	var got []graph.NodeID
	for {
		v, _, ok := h.Pop()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Errorf("drain order = %v, want [3 1]", got)
	}
	// Reset then reuse.
	h.Reset(10)
	if h.Len() != 0 || h.Contains(3) {
		t.Errorf("Reset should empty the heap")
	}
}

// TestHeapAgainstReference drives the indexed heap with random updates,
// removals and pops and checks every pop against a naive reference model.
func TestHeapAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 64
	var h Heap
	for trial := 0; trial < 20; trial++ {
		h.Reset(n)
		ref := map[graph.NodeID]float64{}
		for op := 0; op < 500; op++ {
			switch rng.Intn(4) {
			case 0, 1: // update
				v := graph.NodeID(rng.Intn(n))
				p := rng.Float64()
				h.Update(v, p)
				ref[v] = p
			case 2: // remove
				v := graph.NodeID(rng.Intn(n))
				_, inRef := ref[v]
				if h.Remove(v) != inRef {
					t.Fatalf("Remove(%d) disagreed with reference", v)
				}
				delete(ref, v)
			case 3: // pop
				v, p, ok := h.Pop()
				if ok != (len(ref) > 0) {
					t.Fatalf("Pop ok=%v with %d reference entries", ok, len(ref))
				}
				if !ok {
					continue
				}
				maxP := -1.0
				for _, rp := range ref {
					if rp > maxP {
						maxP = rp
					}
				}
				if p != maxP || ref[v] != p {
					t.Fatalf("Pop = %d/%g, reference max %g", v, p, maxP)
				}
				delete(ref, v)
			}
			if h.Len() != len(ref) {
				t.Fatalf("Len = %d, reference %d", h.Len(), len(ref))
			}
		}
	}
}

func TestHeapResize(t *testing.T) {
	var h Heap
	h.Reset(4)
	h.Update(3, 1)
	h.Reset(100)
	if h.Contains(3) {
		t.Fatalf("entries must not survive Reset")
	}
	h.Update(99, 2)
	h.Update(0, 1)
	if v, _, _ := h.Peek(); v != 99 {
		t.Errorf("heap broken after growth")
	}
	h.Reset(2)
	h.Update(1, 5)
	if v, _, _ := h.Peek(); v != 1 {
		t.Errorf("heap broken after shrink")
	}
}
