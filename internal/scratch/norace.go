//go:build !race

package scratch

// RaceEnabled reports whether the race detector is active in this build; see
// race.go.
const RaceEnabled = false
