// Package scratch provides the flat per-query state backing the online top-K
// hot path: generation-stamped dense arrays that behave like sparse maps over
// node IDs without hashing or per-query clearing, and an index-keyed d-ary
// max-heap with in-place decrease-key (heap.go).
//
// The trick is the standard epoch-stamping discipline of bookmark-coloring
// implementations: every structure keeps a dense value array sized to
// NumNodes plus a parallel stamp array, and a slot is "present" only when its
// stamp equals the structure's current generation. Reset bumps the generation
// in O(1) — no clearing — and a compact touched list records the present
// slots in insertion order for sparse iteration. A whole query's worth of
// scratch therefore resets in constant time and allocates nothing in steady
// state; the owning searcher recycles it across queries through a sync.Pool
// (see internal/topk).
//
// The memory cost is O(NumNodes) per structure regardless of how small the
// query's neighborhood is, which is exactly the trade the walk kernels
// already make; docs/TUNING.md discusses the resulting pool footprint.
package scratch

import "roundtriprank/internal/graph"

// Floats is a dense float64-valued map over node IDs with O(1) reset.
// The zero value is empty; Reset must be called before use.
type Floats struct {
	val     []float64
	stamp   []uint32
	gen     uint32
	touched []graph.NodeID
}

// Reset empties the map and (re)sizes it for node IDs in [0, n). Previously
// allocated capacity is reused; growing past it allocates once.
func (m *Floats) Reset(n int) {
	m.touched = m.touched[:0]
	m.val = growFloats(m.val, n)
	m.stamp = growStamps(m.stamp, n)
	m.gen++
	if m.gen == 0 { // generation wraparound: stale stamps could alias
		clear(m.stamp)
		m.gen = 1
	}
}

// Len returns the number of present slots.
func (m *Floats) Len() int { return len(m.touched) }

// Has reports whether v is present.
func (m *Floats) Has(v graph.NodeID) bool { return m.stamp[v] == m.gen }

// Get returns the value at v, zero when absent.
func (m *Floats) Get(v graph.NodeID) float64 {
	if m.stamp[v] != m.gen {
		return 0
	}
	return m.val[v]
}

// Set stores x at v, marking it present.
func (m *Floats) Set(v graph.NodeID, x float64) {
	m.touch(v)
	m.val[v] = x
}

// Add adds x to the value at v (absent counts as zero) and returns the new
// value.
func (m *Floats) Add(v graph.NodeID, x float64) float64 {
	m.touch(v)
	m.val[v] += x
	return m.val[v]
}

func (m *Floats) touch(v graph.NodeID) {
	if m.stamp[v] != m.gen {
		m.stamp[v] = m.gen
		m.val[v] = 0
		m.touched = append(m.touched, v)
	}
}

// Touched returns the present node IDs in insertion order. The slice aliases
// internal storage: it is valid until the next Reset and must not be mutated.
func (m *Floats) Touched() []graph.NodeID { return m.touched }

// Each calls fn for every present slot in insertion order.
func (m *Floats) Each(fn func(v graph.NodeID, x float64)) {
	for _, v := range m.touched {
		fn(v, m.val[v])
	}
}

// Ints is a dense int-valued map over node IDs with O(1) reset. Unlike
// Floats it keeps no touched list: callers iterate it through the key set of
// a sibling structure (TBounds iterates its seen list). The zero value is
// empty; Reset must be called before use.
type Ints struct {
	val   []int32
	stamp []uint32
	gen   uint32
}

// Reset empties the map and (re)sizes it for node IDs in [0, n).
func (m *Ints) Reset(n int) {
	m.val = growInts(m.val, n)
	m.stamp = growStamps(m.stamp, n)
	m.gen++
	if m.gen == 0 {
		clear(m.stamp)
		m.gen = 1
	}
}

// Get returns the value at v, zero when absent.
func (m *Ints) Get(v graph.NodeID) int {
	if m.stamp[v] != m.gen {
		return 0
	}
	return int(m.val[v])
}

// Set stores x at v.
func (m *Ints) Set(v graph.NodeID, x int) {
	m.stamp[v] = m.gen
	m.val[v] = int32(x)
}

// Add adds delta to the value at v (absent counts as zero) and returns the
// new value.
func (m *Ints) Add(v graph.NodeID, delta int) int {
	if m.stamp[v] != m.gen {
		m.stamp[v] = m.gen
		m.val[v] = 0
	}
	m.val[v] += int32(delta)
	return int(m.val[v])
}

// Bounds is the per-node lower/upper bound pair of the two-stage framework:
// one stamped seen-set with two dense value arrays, so a node's membership in
// the neighborhood and both of its bounds live on the same cache-friendly
// index. The zero value is empty; Reset must be called before use.
type Bounds struct {
	lo      []float64
	up      []float64
	stamp   []uint32
	gen     uint32
	touched []graph.NodeID
}

// Reset empties the set and (re)sizes it for node IDs in [0, n).
func (b *Bounds) Reset(n int) {
	b.touched = b.touched[:0]
	b.lo = growFloats(b.lo, n)
	b.up = growFloats(b.up, n)
	b.stamp = growStamps(b.stamp, n)
	b.gen++
	if b.gen == 0 {
		clear(b.stamp)
		b.gen = 1
	}
}

// Len returns the neighborhood size.
func (b *Bounds) Len() int { return len(b.touched) }

// Seen reports whether v is in the neighborhood.
func (b *Bounds) Seen(v graph.NodeID) bool { return b.stamp[v] == b.gen }

// Lower returns the lower bound of v, zero when unseen.
func (b *Bounds) Lower(v graph.NodeID) float64 {
	if b.stamp[v] != b.gen {
		return 0
	}
	return b.lo[v]
}

// Upper returns the upper bound of v and whether v is seen.
func (b *Bounds) Upper(v graph.NodeID) (float64, bool) {
	if b.stamp[v] != b.gen {
		return 0, false
	}
	return b.up[v], true
}

// Get returns both bounds of v and whether v is seen.
func (b *Bounds) Get(v graph.NodeID) (lo, up float64, seen bool) {
	if b.stamp[v] != b.gen {
		return 0, 0, false
	}
	return b.lo[v], b.up[v], true
}

// Set stores both bounds of v, adding it to the neighborhood if new.
func (b *Bounds) Set(v graph.NodeID, lo, up float64) {
	if b.stamp[v] != b.gen {
		b.stamp[v] = b.gen
		b.touched = append(b.touched, v)
	}
	b.lo[v] = lo
	b.up[v] = up
}

// Touched returns the seen node IDs in insertion order. The slice aliases
// internal storage: it is valid until the next Reset and must not be mutated.
func (b *Bounds) Touched() []graph.NodeID { return b.touched }

// Each calls fn for every seen node in insertion order.
func (b *Bounds) Each(fn func(v graph.NodeID, lo, up float64)) {
	for _, v := range b.touched {
		fn(v, b.lo[v], b.up[v])
	}
}

// growFloats reslices s to length n, allocating only when n exceeds its
// capacity. Newly exposed slots carry stale values; the stamp discipline
// makes them unreadable until written.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// growStamps reslices s to length n. Slots beyond the previous length must
// read as "absent", so a grow within capacity clears the newly exposed tail
// (those slots may hold stamps from a larger, older graph).
func growStamps(s []uint32, n int) []uint32 {
	if cap(s) < n {
		out := make([]uint32, n)
		copy(out, s)
		return out
	}
	old := len(s)
	s = s[:n]
	if n > old {
		clear(s[old:])
	}
	return s
}
