//go:build race

package scratch

// RaceEnabled reports whether the race detector is active in this build.
// Allocation-pinning tests consult it: under -race, sync.Pool deliberately
// bypasses reuse to expose races, so steady-state allocation counts are not
// meaningful there.
const RaceEnabled = true
