package scratch

import "roundtriprank/internal/graph"

// heapArity is the branching factor of the heap. A 4-ary layout halves the
// tree depth of a binary heap and keeps each node's children in one cache
// line, which wins on the sift-down-heavy pop/update mix of the BCA benefit
// selection.
const heapArity = 4

// Heap is an index-keyed d-ary max-heap over node IDs with float64
// priorities. Unlike heapx.Max, it tracks each node's position, so a
// priority change moves the existing entry in place — there are no stale
// entries and no lazy reinsertion, and the heap size never exceeds the
// number of distinct live nodes. Position slots are generation-stamped like
// the other scratch structures, so Reset is O(1) with no clearing.
//
// The zero value is empty; Reset must be called before use.
type Heap struct {
	items []graph.NodeID // heap order
	pri   []float64      // parallel to items
	pos   []int32        // node -> index into items, -1 when removed
	stamp []uint32
	gen   uint32
}

// Reset empties the heap and (re)sizes its position index for node IDs in
// [0, n).
func (h *Heap) Reset(n int) {
	h.items = h.items[:0]
	h.pri = h.pri[:0]
	h.pos = growInts(h.pos, n)
	h.stamp = growStamps(h.stamp, n)
	h.gen++
	if h.gen == 0 {
		clear(h.stamp)
		h.gen = 1
	}
}

// Len returns the number of entries.
func (h *Heap) Len() int { return len(h.items) }

// Contains reports whether v currently has an entry.
func (h *Heap) Contains(v graph.NodeID) bool {
	return h.stamp[v] == h.gen && h.pos[v] >= 0
}

// Priority returns v's current priority and whether v has an entry.
func (h *Heap) Priority(v graph.NodeID) (float64, bool) {
	if !h.Contains(v) {
		return 0, false
	}
	return h.pri[h.pos[v]], true
}

// Update inserts v with the given priority, or changes v's priority in place
// (sifting up or down as needed) when it already has an entry.
func (h *Heap) Update(v graph.NodeID, pri float64) {
	if h.stamp[v] == h.gen && h.pos[v] >= 0 {
		i := int(h.pos[v])
		old := h.pri[i]
		h.pri[i] = pri
		if pri > old {
			h.up(i)
		} else if pri < old {
			h.down(i)
		}
		return
	}
	h.stamp[v] = h.gen
	h.pos[v] = int32(len(h.items))
	h.items = append(h.items, v)
	h.pri = append(h.pri, pri)
	h.up(len(h.items) - 1)
}

// Peek returns the highest-priority entry without removing it. ok is false
// when the heap is empty.
func (h *Heap) Peek() (v graph.NodeID, pri float64, ok bool) {
	if len(h.items) == 0 {
		return 0, 0, false
	}
	return h.items[0], h.pri[0], true
}

// Pop removes and returns the highest-priority entry. ok is false when the
// heap is empty.
func (h *Heap) Pop() (v graph.NodeID, pri float64, ok bool) {
	if len(h.items) == 0 {
		return 0, 0, false
	}
	v, pri = h.items[0], h.pri[0]
	h.removeAt(0)
	return v, pri, true
}

// Remove deletes v's entry if present and reports whether it did.
func (h *Heap) Remove(v graph.NodeID) bool {
	if h.stamp[v] != h.gen || h.pos[v] < 0 {
		return false
	}
	h.removeAt(int(h.pos[v]))
	return true
}

func (h *Heap) removeAt(i int) {
	last := len(h.items) - 1
	h.pos[h.items[i]] = -1
	if i != last {
		moved := h.items[last]
		h.items[i], h.pri[i] = moved, h.pri[last]
		h.pos[moved] = int32(i)
	}
	h.items = h.items[:last]
	h.pri = h.pri[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / heapArity
		if h.pri[parent] >= h.pri[i] {
			return
		}
		h.swap(parent, i)
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.items)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		best := i
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first; c < end; c++ {
			if h.pri[c] > h.pri[best] {
				best = c
			}
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *Heap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pri[i], h.pri[j] = h.pri[j], h.pri[i]
	h.pos[h.items[i]] = int32(i)
	h.pos[h.items[j]] = int32(j)
}
