package heapx

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMaxHeapBasic(t *testing.T) {
	h := NewMax[string](4)
	if _, _, ok := h.Pop(); ok {
		t.Fatalf("Pop on empty heap should report !ok")
	}
	if _, _, ok := h.Peek(); ok {
		t.Fatalf("Peek on empty heap should report !ok")
	}
	h.Push("a", 1)
	h.Push("b", 5)
	h.Push("c", 3)
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	if item, pri, ok := h.Peek(); !ok || item != "b" || pri != 5 {
		t.Fatalf("Peek = %v,%v,%v", item, pri, ok)
	}
	order := []string{}
	for {
		item, _, ok := h.Pop()
		if !ok {
			break
		}
		order = append(order, item)
	}
	if len(order) != 3 || order[0] != "b" || order[1] != "c" || order[2] != "a" {
		t.Fatalf("pop order = %v", order)
	}
	h.Push("x", 2)
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Reset should empty the heap")
	}
}

// Property: popping everything yields priorities in non-increasing order.
func TestQuickMaxHeapOrdering(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewMax[int](len(vals))
		for i, v := range vals {
			h.Push(i, v)
		}
		prev := 0.0
		first := true
		for {
			_, pri, ok := h.Pop()
			if !ok {
				break
			}
			if !first && pri > prev {
				return false
			}
			prev = pri
			first = false
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTopK(t *testing.T) {
	tk := NewTopK[int](3)
	for i, s := range []float64{5, 1, 9, 3, 7, 2} {
		tk.Offer(i, s)
	}
	items := tk.Items()
	if tk.Len() != 3 || len(items) != 3 {
		t.Fatalf("TopK length = %d, want 3", len(items))
	}
	if items[0].Priority != 9 || items[1].Priority != 7 || items[2].Priority != 5 {
		t.Fatalf("TopK priorities = %v", items)
	}
}

func TestTopKAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		k := 1 + rng.Intn(10)
		scores := make([]float64, n)
		tk := NewTopK[int](k)
		for i := range scores {
			scores[i] = rng.NormFloat64()
			tk.Offer(i, scores[i])
		}
		sorted := append([]float64(nil), scores...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		want := k
		if n < k {
			want = n
		}
		items := tk.Items()
		if len(items) != want {
			t.Fatalf("TopK kept %d items, want %d", len(items), want)
		}
		for i := 0; i < want; i++ {
			if items[i].Priority != sorted[i] {
				t.Fatalf("trial %d: rank %d priority %g, want %g", trial, i, items[i].Priority, sorted[i])
			}
		}
	}
}
