// Package heapx provides a small generic binary max-heap keyed by float64
// priorities. It backs benefit-ordered node selection in the map-based BCA
// engine and border-node selection in the map-based T-Rank bounds framework
// — the fallback/baseline implementations for views without CSR adjacency.
//
// The heap intentionally does not support decrease-key; callers push updated
// entries and discard stale ones on pop (lazy invalidation), which is simple
// and fast enough for the fallback path. The online serving hot path no
// longer uses it: scratch.Heap (internal/scratch) is an index-keyed d-ary
// heap that moves entries in place on priority changes, so it never holds
// stale duplicates and its size is bounded by the touched-node count.
package heapx

// Entry is a heap element: an item with a priority.
type Entry[T any] struct {
	Item     T
	Priority float64
}

// Max is a binary max-heap over Entry values. The zero value is ready to use.
type Max[T any] struct {
	entries []Entry[T]
}

// NewMax returns an empty max-heap with the given initial capacity.
func NewMax[T any](capacity int) *Max[T] {
	return &Max[T]{entries: make([]Entry[T], 0, capacity)}
}

// Len returns the number of entries in the heap.
func (h *Max[T]) Len() int { return len(h.entries) }

// Push adds an item with the given priority.
func (h *Max[T]) Push(item T, priority float64) {
	h.entries = append(h.entries, Entry[T]{Item: item, Priority: priority})
	h.siftUp(len(h.entries) - 1)
}

// Peek returns the highest-priority entry without removing it. ok is false
// when the heap is empty.
func (h *Max[T]) Peek() (item T, priority float64, ok bool) {
	if len(h.entries) == 0 {
		var zero T
		return zero, 0, false
	}
	e := h.entries[0]
	return e.Item, e.Priority, true
}

// Pop removes and returns the highest-priority entry. ok is false when the
// heap is empty.
func (h *Max[T]) Pop() (item T, priority float64, ok bool) {
	if len(h.entries) == 0 {
		var zero T
		return zero, 0, false
	}
	top := h.entries[0]
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	if len(h.entries) > 0 {
		h.siftDown(0)
	}
	return top.Item, top.Priority, true
}

// Reset removes all entries but keeps the allocated capacity.
func (h *Max[T]) Reset() { h.entries = h.entries[:0] }

func (h *Max[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.entries[parent].Priority >= h.entries[i].Priority {
			return
		}
		h.entries[parent], h.entries[i] = h.entries[i], h.entries[parent]
		i = parent
	}
}

func (h *Max[T]) siftDown(i int) {
	n := len(h.entries)
	for {
		left, right := 2*i+1, 2*i+2
		largest := i
		if left < n && h.entries[left].Priority > h.entries[largest].Priority {
			largest = left
		}
		if right < n && h.entries[right].Priority > h.entries[largest].Priority {
			largest = right
		}
		if largest == i {
			return
		}
		h.entries[i], h.entries[largest] = h.entries[largest], h.entries[i]
		i = largest
	}
}

// TopK maintains the K largest items seen so far by score, with deterministic
// tie-breaking by insertion order. It is used to assemble candidate top-K
// rankings from lower bounds.
type TopK[T any] struct {
	k     int
	items []Entry[T]
}

// NewTopK returns a TopK keeping the k largest scores.
func NewTopK[T any](k int) *TopK[T] {
	return &TopK[T]{k: k}
}

// Offer inserts an item; if more than k items are held, the smallest is
// dropped.
func (t *TopK[T]) Offer(item T, score float64) {
	t.items = append(t.items, Entry[T]{Item: item, Priority: score})
	// Insertion into a small sorted slice keeps code simple; k is small.
	for i := len(t.items) - 1; i > 0; i-- {
		if t.items[i].Priority > t.items[i-1].Priority {
			t.items[i], t.items[i-1] = t.items[i-1], t.items[i]
		} else {
			break
		}
	}
	if len(t.items) > t.k {
		t.items = t.items[:t.k]
	}
}

// Items returns the retained entries in descending score order.
func (t *TopK[T]) Items() []Entry[T] {
	out := make([]Entry[T], len(t.items))
	copy(out, t.items)
	return out
}

// Len returns the number of retained entries.
func (t *TopK[T]) Len() int { return len(t.items) }
