package roundtriprank

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"roundtriprank/internal/scratch"
	"roundtriprank/internal/testgraphs"
)

// Online-path serving tests for the pooled scratch-state subsystem: steady
// state allocation pins, concurrent pooled queries sharing one Engine (the
// -race matrix job exercises the pool handoff), and pooled-scratch resizing
// across epoch swaps.

// TestOnlineRankSteadyStateAllocs pins the allocation profile of a pooled
// online query through the full public path. Engine.Rank adds request
// planning, filter compilation and response assembly on top of the
// near-zero-alloc search itself, so the budget is a small constant rather
// than zero — but three orders of magnitude below the map-based path's
// per-query footprint (see BENCH_PR5.json).
func TestOnlineRankSteadyStateAllocs(t *testing.T) {
	if scratch.RaceEnabled {
		t.Skip("sync.Pool bypasses reuse under the race detector; allocation counts are not meaningful")
	}
	toy := testgraphs.NewToy()
	engine, err := NewEngine(toy.Graph)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	req := Request{Query: SingleNode(toy.T1), K: 3, Method: TwoSBound, Epsilon: 0.01}
	if _, err := engine.Rank(context.Background(), req); err != nil { // warm the pool
		t.Fatalf("warmup: %v", err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := engine.Rank(context.Background(), req); err != nil {
			t.Fatalf("Rank: %v", err)
		}
	})
	const budget = 32
	if avg > budget {
		t.Errorf("steady-state online Rank allocates %.1f objects/query, budget %d", avg, budget)
	}
}

// TestConcurrentOnlinePooledRank hammers one Engine with online queries from
// many goroutines: every in-flight query holds its own pooled scratch, so
// all responses must be identical to the serial answers. Under -race this is
// the data-race check for the searcher pool.
func TestConcurrentOnlinePooledRank(t *testing.T) {
	toy := testgraphs.NewToy()
	engine, err := NewEngine(toy.Graph)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	var reqs []Request
	for _, q := range []NodeID{toy.T1, toy.T2, toy.P[0], toy.P[3], toy.V1} {
		for _, scheme := range []Scheme{Scheme2SBound, SchemeGS} {
			reqs = append(reqs, Request{
				Query: SingleNode(q), K: 4, Method: BoundScheme(scheme), Epsilon: 0.005,
			})
		}
	}
	want := make([]*Response, len(reqs))
	for i, req := range reqs {
		w, err := engine.Rank(context.Background(), req)
		if err != nil {
			t.Fatalf("serial Rank %d: %v", i, err)
		}
		want[i] = w
	}

	const goroutines = 24
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 8; rep++ {
				i := (g*3 + rep) % len(reqs)
				resp, err := engine.Rank(context.Background(), reqs[i])
				if err != nil {
					errCh <- err
					return
				}
				if len(resp.Results) != len(want[i].Results) || resp.Rounds != want[i].Rounds {
					errCh <- fmt.Errorf("req %d: shape mismatch under concurrency", i)
					return
				}
				for j := range resp.Results {
					if resp.Results[j].Node != want[i].Results[j].Node ||
						math.Float64bits(resp.Results[j].Score) != math.Float64bits(want[i].Results[j].Score) {
						errCh <- fmt.Errorf("req %d rank %d: result mismatch under concurrency", i, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestOnlinePooledScratchAcrossEpochs interleaves pooled online queries with
// an Engine.Apply that grows the graph: the scratch recycled from the old
// epoch must be resized and invalidated, and post-swap answers must be
// bit-identical to a fresh engine over the equivalent from-scratch graph —
// including a query rooted at a node ID that did not exist before the swap.
func TestOnlinePooledScratchAcrossEpochs(t *testing.T) {
	base := epochBase(t)
	engine, err := NewEngine(base)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// Warm the pool on epoch 0 so the post-swap queries recycle old-epoch
	// scratch rather than starting fresh.
	for i := 0; i < 4; i++ {
		if _, err := engine.Rank(context.Background(), Request{
			Query: SingleNode(NodeID(i)), K: 4, Method: TwoSBound, Epsilon: 0.01,
		}); err != nil {
			t.Fatalf("pre-swap Rank: %v", err)
		}
	}
	res, err := engine.Apply(context.Background(), stageEpochDelta(t, base))
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	fresh, err := NewEngine(epochScratch(t))
	if err != nil {
		t.Fatalf("NewEngine(scratch): %v", err)
	}
	queries := []Query{
		SingleNode(res.Graph.NodeByLabel("paper:0")),
		SingleNode(res.Graph.NodeByLabel("paper:4")), // born in the delta: out of range for stale scratch
		MultiNode(res.Graph.NodeByLabel("author:1"), res.Graph.NodeByLabel("venue:kdd")),
	}
	for qi, q := range queries {
		req := Request{Query: q, K: 5, Method: TwoSBound, Epsilon: 0, Beta: Float64(0.4)}
		got, err := engine.Rank(context.Background(), req)
		if err != nil {
			t.Fatalf("q%d on committed: %v", qi, err)
		}
		want, err := fresh.Rank(context.Background(), req)
		if err != nil {
			t.Fatalf("q%d on scratch-built: %v", qi, err)
		}
		requireBitIdentical(t, fmt.Sprintf("q%d", qi), got, want)
	}
}
