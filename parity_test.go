package roundtriprank

import (
	"context"
	"fmt"
	"math"
	"testing"

	"roundtriprank/internal/testgraphs"
)

// Cross-method golden parity suite: on every graph in internal/testgraphs,
// the exact solver, the 2SBound online search and each weaker bound scheme
// (G+S, Gupta, Sarkar) must return identical top-K sets at ε = 0 — they are
// all computing the same measure, only with different bound machinery.

type parityGraph struct {
	name    string
	graph   *Graph
	queries []NodeID
}

func parityGraphs() []parityGraph {
	toy := testgraphs.NewToy()
	return []parityGraph{
		{"toy", toy.Graph, []NodeID{toy.T1, toy.P[2], toy.V1}},
		{"line", testgraphs.Line(10), []NodeID{0, 4}},
		{"cycle", testgraphs.Cycle(12), []NodeID{0, 7}},
		{"star", testgraphs.Star(8), []NodeID{0, 3}},
	}
}

// gapK picks the largest K ≤ maxK such that the exact top K are pairwise
// strictly separated and separated from rank K+1. Symmetric graphs (star
// leaves, cycle antipodes) tie exactly, and the ε = 0 top-K conditions
// (Eq. 13–14) are unsatisfiable across a tie, so parity of "the" top-K set is
// only well defined at gap boundaries. The 1e-6 threshold is far above the
// bound-refinement tolerance (1e-12), so the online search can always
// separate the chosen ranks.
func gapK(results []Result, maxK int) int {
	if len(results) < maxK {
		maxK = len(results)
	}
	const eps = 1e-6
	// b is the rank of the first tie: gaps before it are all strict.
	b := len(results)
	for i := 1; i < len(results); i++ {
		if results[i-1].Score-results[i].Score <= eps {
			b = i
			break
		}
	}
	if b == len(results) { // no ties at all
		return maxK
	}
	k := b - 1 // the last k whose boundary gap is also strict
	if k > maxK {
		k = maxK
	}
	return k // zero when even ranks 1 and 2 tie; callers skip then
}

func TestCrossMethodParity(t *testing.T) {
	methods := []Method{TwoSBound, BoundScheme(SchemeGS), BoundScheme(SchemeGupta), BoundScheme(SchemeSarkar)}
	for _, pg := range parityGraphs() {
		engine, err := NewEngine(pg.graph)
		if err != nil {
			t.Fatalf("%s: NewEngine: %v", pg.name, err)
		}
		for _, q := range pg.queries {
			for _, beta := range []float64{0.3, 0.5} {
				t.Run(fmt.Sprintf("%s/q%d/beta%.1f", pg.name, q, beta), func(t *testing.T) {
					exact, err := engine.Rank(context.Background(), Request{
						Query: SingleNode(q), K: pg.graph.NumNodes(), Method: Exact, Beta: Float64(beta),
					})
					if err != nil {
						t.Fatalf("exact: %v", err)
					}
					if len(exact.Results) == 0 {
						t.Fatalf("exact returned no results")
					}
					k := gapK(exact.Results, 10)
					if k < 1 {
						t.Skip("top ranks tie exactly; top-K set not well defined at eps=0")
					}
					want := make(map[NodeID]float64, k)
					for _, r := range exact.Results[:k] {
						want[r.Node] = r.Score
					}
					for _, m := range methods {
						resp, err := engine.Rank(context.Background(), Request{
							Query: SingleNode(q), K: k, Method: m, Epsilon: 0, Beta: Float64(beta),
						})
						if err != nil {
							t.Fatalf("%s: %v", m, err)
						}
						if !resp.Converged {
							t.Fatalf("%s: did not converge at eps=0", m)
						}
						if len(resp.Results) != k {
							t.Fatalf("%s: returned %d results, want %d", m, len(resp.Results), k)
						}
						for _, r := range resp.Results {
							wantScore, ok := want[r.Node]
							if !ok {
								t.Errorf("%s: node %d not in exact top-%d", m, r.Node, k)
								continue
							}
							// Online scores are normalized lower bounds: they
							// must not materially exceed the exact score. The
							// slack covers the exact solver's own 1e-9
							// convergence tolerance.
							if r.Score <= 0 || r.Score > wantScore+1e-6*(1+wantScore) {
								t.Errorf("%s: node %d score %g outside (0, exact %g]", m, r.Node, r.Score, wantScore)
							}
						}
					}
				})
			}
		}
	}
}

// TestParityBatchAgainstSingle extends the golden suite to the batch path:
// for every test graph, RankBatch with the cached-vector mixture must agree
// with one-shot Engine.Rank on node sets and scores.
func TestParityBatchAgainstSingle(t *testing.T) {
	for _, pg := range parityGraphs() {
		engine, err := NewEngine(pg.graph)
		if err != nil {
			t.Fatalf("%s: NewEngine: %v", pg.name, err)
		}
		var reqs []Request
		for _, q := range pg.queries {
			reqs = append(reqs, Request{Query: SingleNode(q), K: 5, Method: Exact})
		}
		batch, err := engine.RankBatch(context.Background(), reqs)
		if err != nil {
			t.Fatalf("%s: RankBatch: %v", pg.name, err)
		}
		for i, req := range reqs {
			single, err := engine.Rank(context.Background(), req)
			if err != nil {
				t.Fatalf("%s: Rank: %v", pg.name, err)
			}
			if len(single.Results) != len(batch[i].Results) {
				t.Fatalf("%s req %d: batch %d results, single %d",
					pg.name, i, len(batch[i].Results), len(single.Results))
			}
			for j := range single.Results {
				if single.Results[j].Node != batch[i].Results[j].Node {
					t.Errorf("%s req %d rank %d: batch node %d != single node %d",
						pg.name, i, j, batch[i].Results[j].Node, single.Results[j].Node)
				}
				if d := math.Abs(single.Results[j].Score - batch[i].Results[j].Score); d > 1e-9 {
					t.Errorf("%s req %d rank %d: score diff %g", pg.name, i, j, d)
				}
			}
		}
	}
}
