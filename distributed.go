package roundtriprank

import (
	"context"
	"fmt"

	"roundtriprank/internal/distributed"
	"roundtriprank/internal/graph"
)

// This file is the public surface of the coordinator/worker subsystem: an
// Engine configured with WithWorkers can execute the Distributed method,
// fanning each exact power iteration out to stripe workers (cmd/gpserver
// processes, or in-process loopback workers) and merging the partial vectors
// into the same top-K path as the Exact method. See ARCHITECTURE.md for the
// topology and docs/API.md for the wire protocol.

// Transport is one coordinator-side connection to a stripe worker. Obtain one
// with DialWorker (HTTP) or LoopbackWorkers (in-process).
type Transport = distributed.Transport

// ClusterError wraps a failure of the distributed worker cluster — a failed
// connect, a worker outage that outlived the retry budget, or a stripe
// mismatch. It distinguishes backend trouble from request-validation errors,
// so servers can answer 5xx instead of 4xx; unwrap with errors.As.
type ClusterError struct {
	Err error
}

// Error implements error.
func (e *ClusterError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying cluster failure.
func (e *ClusterError) Unwrap() error { return e.Err }

// DialWorker returns a Transport speaking the gpserver HTTP wire protocol to
// the worker at baseURL (e.g. "http://10.0.0.7:7001"). Dialing is lazy: the
// connection is first used when the engine plans a Distributed query.
func DialWorker(baseURL string) Transport {
	return distributed.NewHTTPTransport(baseURL, nil)
}

// LoopbackWorkers stripes g across n in-process workers and returns their
// transports, in stripe order. It is the single-process deployment of the
// Distributed method: identical code paths to an HTTP cluster, no network.
func LoopbackWorkers(g *Graph, n int) ([]Transport, error) {
	if n <= 0 {
		return nil, fmt.Errorf("roundtriprank: need at least one worker, got %d", n)
	}
	ts := make([]Transport, n)
	for i := 0; i < n; i++ {
		s, err := distributed.BuildStripe(g, i, n)
		if err != nil {
			return nil, err
		}
		ts[i] = distributed.NewLoopback(distributed.NewWorker(s))
	}
	return ts, nil
}

// DeployStripes builds the n-way striping of g and ships stripe i to
// workers[i], for workers that support installation (HTTP workers do:
// gpserver accepts stripes over POST /v1/stripe). Use it to bring up a
// cluster of empty gpserver processes without giving each one a copy of the
// graph.
func DeployStripes(ctx context.Context, g *Graph, workers []Transport) error {
	if len(workers) == 0 {
		return fmt.Errorf("roundtriprank: no workers to deploy to")
	}
	for i, w := range workers {
		sender, ok := w.(distributed.StripeSender)
		if !ok {
			return fmt.Errorf("roundtriprank: worker %d cannot receive stripes", i)
		}
		s, err := distributed.BuildStripe(g, i, len(workers))
		if err != nil {
			return err
		}
		if err := sender.SendStripe(ctx, s); err != nil {
			return fmt.Errorf("roundtriprank: deploy stripe %d: %w", i, err)
		}
	}
	return nil
}

// RedeployStripes reconciles a worker fleet with a new graph snapshot after
// a Commit: it cuts the len(workers)-way striping of g, asks each worker what
// it currently serves, and ships the full stripe only where the content
// fingerprint changed (or the worker is empty or mis-striped). Workers whose
// stripe the commit did not touch are retagged — one tiny RPC rebinding the
// stripe to the new graph fingerprint and epoch — so the cost of an epoch
// rollover scales with the delta, not with the graph. It returns how many
// stripes were shipped and how many retagged.
//
// Engine.Apply calls this automatically on engines configured with
// WithWorkers; use it directly when the graph is committed out-of-band (e.g.
// a loader process feeding a worker fleet that rtrankd coordinators dial).
func RedeployStripes(ctx context.Context, g *Graph, workers []Transport) (shipped, retagged int, err error) {
	if len(workers) == 0 {
		return 0, 0, fmt.Errorf("roundtriprank: no workers to deploy to")
	}
	fp := graph.GraphFingerprint(g)
	for i, w := range workers {
		d, err := graph.BuildStripeData(g, i, len(workers))
		if err != nil {
			return shipped, retagged, err
		}
		content := d.ContentFingerprint()
		info, infoErr := w.Info(ctx)
		unchanged := infoErr == nil && info.Index == i && info.Count == len(workers) && info.Content == content
		if unchanged {
			if rt, ok := w.(distributed.StripeRetagger); ok {
				if err := rt.RetagStripe(ctx, fp, g.Epoch(), content); err == nil {
					retagged++
					continue
				}
				// A refused retag (the stripe moved between Info and Retag, or
				// the worker cannot retag) falls back to a full ship below.
			}
		}
		sender, ok := w.(distributed.StripeSender)
		if !ok {
			return shipped, retagged, fmt.Errorf("roundtriprank: worker %d cannot receive stripes", i)
		}
		s, err := distributed.StripeFromData(d)
		if err != nil {
			return shipped, retagged, err
		}
		if err := sender.SendStripe(ctx, s); err != nil {
			return shipped, retagged, fmt.Errorf("roundtriprank: redeploy stripe %d: %w", i, err)
		}
		shipped++
	}
	return shipped, retagged, nil
}

// WithWorkers configures the engine's stripe worker cluster, enabling the
// Distributed method: workers[i] must serve stripe i of len(workers) of the
// engine's graph. The coordinator connects and validates the topology on the
// first distributed query. The engine does not take ownership of the
// transports; close them when done.
func WithWorkers(workers ...Transport) Option {
	return func(e *Engine) error {
		if len(workers) == 0 {
			return fmt.Errorf("roundtriprank: WithWorkers needs at least one transport")
		}
		e.workers = append([]Transport(nil), workers...)
		return nil
	}
}

// WithRowCacheRows sets the capacity, in rows, of the engine's row cache —
// the coordinator-side store the TwoSBoundRemote method serves repeated row
// reads from (default rowserve.DefaultCacheRows = 65536). A cached row costs
// roughly 12 bytes per stored edge plus ~100 bytes of bookkeeping; see
// docs/TUNING.md for sizing. Only meaningful together with WithWorkers.
func WithRowCacheRows(n int) Option {
	return func(e *Engine) error {
		if n <= 0 {
			return fmt.Errorf("roundtriprank: WithRowCacheRows needs a positive capacity, got %d", n)
		}
		e.rowCacheRows = n
		return nil
	}
}

// ClusterStats reports the worker RPC count of the current snapshot's
// coordinator and row-serving view combined, and how many of those were
// retries after transient failures. All zeros before the first distributed
// or remote-online query on the current epoch (each epoch connects lazily)
// or when no workers are configured.
func (e *Engine) ClusterStats() (rpcs, retries int64) {
	snap := e.snap.Load()
	if c := snap.coord.Load(); c != nil {
		cr, ct := c.Stats()
		rpcs += cr
		retries += ct
	}
	if r := snap.rows.Load(); r != nil {
		rr, rt, _ := r.Stats()
		rpcs += rr
		retries += rt
	}
	return rpcs, retries
}

// FleetEpoch reports the epoch the worker fleet is currently serving, as
// seen by the snapshot's coordinator or row-serving view, whichever is
// connected. connected is false when no distributed or remote-online query
// has run on the current epoch yet (each epoch connects to the fleet
// lazily) or when the engine has no workers; the local epoch (Epoch) minus
// a connected fleet epoch is the "epoch lag" surfaced on /metrics —
// non-zero lag means queries are still pinned to stripes the fleet has
// since rolled past.
func (e *Engine) FleetEpoch() (epoch uint64, connected bool) {
	snap := e.snap.Load()
	if c := snap.coord.Load(); c != nil {
		return c.Epoch(), true
	}
	if r := snap.rows.Load(); r != nil {
		return r.Epoch(), true
	}
	return 0, false
}

// RowQueryStats is the row-serving footprint of one TwoSBoundRemote query,
// reported in Response.Rows: together with the searcher's neighborhood sizes
// it proves the O(touched) serving property — Fetched never exceeds the rows
// the searcher touched, and a repeat of a fully cached query shows RPCs == 0.
type RowQueryStats struct {
	// Fetched is the number of rows pulled over the network.
	Fetched int64
	// RPCs is the number of row-fetch calls issued (including retries).
	RPCs int64
	// CacheHits and CacheMisses count the query's row-cache probes.
	CacheHits, CacheMisses int64
}

// RowServeStats is the engine-wide view of the TwoSBoundRemote serving state:
// cumulative fetch counters of the current epoch's row view and the shared
// row cache's lifetime counters (the cache spans epochs).
type RowServeStats struct {
	// RowsFetched, RowRPCs and RowRetries count the current snapshot's
	// row-serving view; like ClusterStats they reset to zero when an Apply
	// rolls the engine to a new epoch (each epoch connects lazily).
	RowsFetched, RowRPCs, RowRetries int64
	// CacheHits, CacheMisses and CacheEvictions are lifetime counters of the
	// engine's shared row cache.
	CacheHits, CacheMisses, CacheEvictions int64
	// CachedRows is the number of rows currently held.
	CachedRows int
}

// RowServeStats reports the engine's row-serving counters. All zeros when no
// workers are configured or before the first TwoSBoundRemote query.
func (e *Engine) RowServeStats() RowServeStats {
	var st RowServeStats
	if r := e.snap.Load().rows.Load(); r != nil {
		st.RowRPCs, st.RowRetries, st.RowsFetched = r.Stats()
	}
	if e.rowCache != nil {
		st.CacheHits, st.CacheMisses, st.CacheEvictions = e.rowCache.Stats()
		st.CachedRows = e.rowCache.Len()
	}
	return st
}
