package roundtriprank

import (
	"context"
	"fmt"

	"roundtriprank/internal/distributed"
	"roundtriprank/internal/graph"
)

// This file is the public surface of the coordinator/worker subsystem: an
// Engine configured with WithWorkers can execute the Distributed method,
// fanning each exact power iteration out to stripe workers (cmd/gpserver
// processes, or in-process loopback workers) and merging the partial vectors
// into the same top-K path as the Exact method. See ARCHITECTURE.md for the
// topology and docs/API.md for the wire protocol.

// Transport is one coordinator-side connection to a stripe worker. Obtain one
// with DialWorker (HTTP) or LoopbackWorkers (in-process).
type Transport = distributed.Transport

// ClusterError wraps a failure of the distributed worker cluster — a failed
// connect, a worker outage that outlived the retry budget, or a stripe
// mismatch. It distinguishes backend trouble from request-validation errors,
// so servers can answer 5xx instead of 4xx; unwrap with errors.As.
type ClusterError struct {
	Err error
}

// Error implements error.
func (e *ClusterError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying cluster failure.
func (e *ClusterError) Unwrap() error { return e.Err }

// DialWorker returns a Transport speaking the gpserver HTTP wire protocol to
// the worker at baseURL (e.g. "http://10.0.0.7:7001"). Dialing is lazy: the
// connection is first used when the engine plans a Distributed query.
func DialWorker(baseURL string) Transport {
	return distributed.NewHTTPTransport(baseURL, nil)
}

// LoopbackWorkers stripes g across n in-process workers and returns their
// transports, in stripe order. It is the single-process deployment of the
// Distributed method: identical code paths to an HTTP cluster, no network.
func LoopbackWorkers(g *Graph, n int) ([]Transport, error) {
	if n <= 0 {
		return nil, fmt.Errorf("roundtriprank: need at least one worker, got %d", n)
	}
	ts := make([]Transport, n)
	for i := 0; i < n; i++ {
		s, err := distributed.BuildStripe(g, i, n)
		if err != nil {
			return nil, err
		}
		ts[i] = distributed.NewLoopback(distributed.NewWorker(s))
	}
	return ts, nil
}

// DeployStripes builds the n-way striping of g and ships stripe i to
// workers[i], for workers that support installation (HTTP workers do:
// gpserver accepts stripes over POST /v1/stripe). Use it to bring up a
// cluster of empty gpserver processes without giving each one a copy of the
// graph.
func DeployStripes(ctx context.Context, g *Graph, workers []Transport) error {
	if len(workers) == 0 {
		return fmt.Errorf("roundtriprank: no workers to deploy to")
	}
	for i, w := range workers {
		sender, ok := w.(distributed.StripeSender)
		if !ok {
			return fmt.Errorf("roundtriprank: worker %d cannot receive stripes", i)
		}
		s, err := distributed.BuildStripe(g, i, len(workers))
		if err != nil {
			return err
		}
		if err := sender.SendStripe(ctx, s); err != nil {
			return fmt.Errorf("roundtriprank: deploy stripe %d: %w", i, err)
		}
	}
	return nil
}

// RedeployStripes reconciles a worker fleet with a new graph snapshot after
// a Commit: it cuts the len(workers)-way striping of g, asks each worker what
// it currently serves, and ships the full stripe only where the content
// fingerprint changed (or the worker is empty or mis-striped). Workers whose
// stripe the commit did not touch are retagged — one tiny RPC rebinding the
// stripe to the new graph fingerprint and epoch — so the cost of an epoch
// rollover scales with the delta, not with the graph. It returns how many
// stripes were shipped and how many retagged.
//
// Engine.Apply calls this automatically on engines configured with
// WithWorkers; use it directly when the graph is committed out-of-band (e.g.
// a loader process feeding a worker fleet that rtrankd coordinators dial).
func RedeployStripes(ctx context.Context, g *Graph, workers []Transport) (shipped, retagged int, err error) {
	if len(workers) == 0 {
		return 0, 0, fmt.Errorf("roundtriprank: no workers to deploy to")
	}
	fp := graph.GraphFingerprint(g)
	for i, w := range workers {
		d, err := graph.BuildStripeData(g, i, len(workers))
		if err != nil {
			return shipped, retagged, err
		}
		content := d.ContentFingerprint()
		info, infoErr := w.Info(ctx)
		unchanged := infoErr == nil && info.Index == i && info.Count == len(workers) && info.Content == content
		if unchanged {
			if rt, ok := w.(distributed.StripeRetagger); ok {
				if err := rt.RetagStripe(ctx, fp, g.Epoch(), content); err == nil {
					retagged++
					continue
				}
				// A refused retag (the stripe moved between Info and Retag, or
				// the worker cannot retag) falls back to a full ship below.
			}
		}
		sender, ok := w.(distributed.StripeSender)
		if !ok {
			return shipped, retagged, fmt.Errorf("roundtriprank: worker %d cannot receive stripes", i)
		}
		s, err := distributed.StripeFromData(d)
		if err != nil {
			return shipped, retagged, err
		}
		if err := sender.SendStripe(ctx, s); err != nil {
			return shipped, retagged, fmt.Errorf("roundtriprank: redeploy stripe %d: %w", i, err)
		}
		shipped++
	}
	return shipped, retagged, nil
}

// WithWorkers configures the engine's stripe worker cluster, enabling the
// Distributed method: workers[i] must serve stripe i of len(workers) of the
// engine's graph. The coordinator connects and validates the topology on the
// first distributed query. The engine does not take ownership of the
// transports; close them when done.
func WithWorkers(workers ...Transport) Option {
	return func(e *Engine) error {
		if len(workers) == 0 {
			return fmt.Errorf("roundtriprank: WithWorkers needs at least one transport")
		}
		e.workers = append([]Transport(nil), workers...)
		return nil
	}
}

// ClusterStats reports the worker RPC count of the current snapshot's
// coordinator and how many of those were retries after transient failures.
// All zeros before the first distributed query on the current epoch (each
// epoch's coordinator connects lazily) or when no workers are configured.
func (e *Engine) ClusterStats() (rpcs, retries int64) {
	c := e.snap.Load().coord.Load()
	if c == nil {
		return 0, 0
	}
	return c.Stats()
}
