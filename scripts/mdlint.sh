#!/usr/bin/env bash
# mdlint.sh — fail when a Markdown document links to a file that does not
# exist.
#
# Checks every relative link target in README.md, ARCHITECTURE.md, PAPER.md,
# ROADMAP.md and docs/*.md (inline [text](target) links; external http(s):
# and pure-anchor #… targets are skipped, fragments are stripped). CI runs
# this so a renamed or forgotten document breaks the build instead of
# silently 404ing for readers.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
files=(README.md ARCHITECTURE.md PAPER.md ROADMAP.md docs/*.md)

for f in "${files[@]}"; do
    [ -e "$f" ] || continue
    dir=$(dirname "$f")
    # Inline links: capture the (…) target of every […](…) occurrence.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|'#'*) continue ;;
        esac
        path="${target%%#*}"         # strip any fragment
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "mdlint: $f links to missing file: $target" >&2
            fail=1
        fi
    done < <(grep -oE '\[[^]]*\]\([^)]+\)' "$f" | sed -E 's/^\[[^]]*\]\(//; s/\)$//')
done

if [ "$fail" -eq 0 ]; then
    echo "mdlint: all relative links resolve"
fi
exit $fail
