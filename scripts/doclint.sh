#!/usr/bin/env bash
# doclint.sh — fail when a package is missing its godoc package comment.
#
# Every library package (the root package and everything under internal/)
# must have a `// Package <name> ...` comment on some file's package clause,
# and every command (cmd/*, examples/*) a `// Command <name> ...` one. CI
# runs this so documentation debt fails the build instead of accumulating.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

check_package() {
    local dir="$1" name="$2"
    local found=""
    for f in "$dir"/*.go; do
        [ -e "$f" ] || continue
        case "$f" in *_test.go) continue ;; esac
        if grep -q "^// Package $name" "$f"; then
            found="$f"
            break
        fi
    done
    if [ -z "$found" ]; then
        echo "doclint: package $dir is missing a '// Package $name' comment" >&2
        fail=1
    fi
}

check_command() {
    local dir="$1" name="$2"
    if ! grep -q "^// Command $name" "$dir/main.go" 2>/dev/null; then
        echo "doclint: command $dir is missing a '// Command $name' comment" >&2
        fail=1
    fi
}

check_package . roundtriprank
for dir in internal/*/; do
    check_package "${dir%/}" "$(basename "$dir")"
done
for dir in cmd/*/ examples/*/; do
    check_command "${dir%/}" "$(basename "$dir")"
done

exit $fail
