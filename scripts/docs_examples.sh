#!/usr/bin/env bash
# docs_examples.sh — boot the daemons and replay the curl examples documented
# in docs/API.md and docs/OPERATIONS.md, asserting their documented outputs.
#
# CI runs this so the docs cannot drift from the servers: if an endpoint,
# field or example response changes shape, this script fails before a reader
# ever follows a stale example. Requires only bash, curl and the go
# toolchain; the binary multiply example additionally runs when python3 is
# available (it is in CI).
set -euo pipefail
cd "$(dirname "$0")/.."

RT_PORT="${RT_PORT:-18080}"
GP_PORT="${GP_PORT:-17001}"
FLEET_PORT="${FLEET_PORT:-18081}"
FW_PORT="${FW_PORT:-17002}"
BIN=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$BIN"
}
trap cleanup EXIT

fail() { echo "docs_examples: FAIL: $*" >&2; exit 1; }

# expect <label> <needle> <haystack>
expect() {
    case "$3" in
        *"$2"*) echo "  ok: $1" ;;
        *) fail "$1: expected to find '$2' in: $3" ;;
    esac
}

echo "docs_examples: building daemons"
go build -o "$BIN/rtrankd" ./cmd/rtrankd
go build -o "$BIN/gpserver" ./cmd/gpserver

# The exact commands the docs document (docs/API.md, docs/OPERATIONS.md).
"$BIN/gpserver" -dataset bibnet -scale 0.1 -stripe 0 -of 2 -listen "127.0.0.1:$GP_PORT" &
pids+=($!)
"$BIN/rtrankd" -dataset bibnet -scale 0.3 -listen "127.0.0.1:$RT_PORT" &
pids+=($!)
# The self-organizing fleet documented in docs/API.md ("Fleet membership")
# and docs/OPERATIONS.md ("Self-organizing fleet"): a coordinator in
# -fleet-stripes mode plus one empty worker that registers itself. Tick and
# heartbeat periods are shortened so the script converges quickly.
"$BIN/rtrankd" -dataset bibnet -scale 0.3 -listen "127.0.0.1:$FLEET_PORT" \
    -fleet-stripes 2 -replication 2 -fleet-tick 250ms &
pids+=($!)
"$BIN/gpserver" -listen "127.0.0.1:$FW_PORT" \
    -register "http://127.0.0.1:$FLEET_PORT" -heartbeat-interval 100ms &
pids+=($!)

wait_up() {
    for _ in $(seq 1 120); do
        if curl -sf "localhost:$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.5
    done
    fail "server on port $1 did not come up"
}
wait_up "$RT_PORT"
wait_up "$GP_PORT"
wait_up "$FLEET_PORT"
wait_up "$FW_PORT"

echo "docs_examples: rtrankd examples (docs/API.md, docs/OPERATIONS.md)"
out=$(curl -s "localhost:$RT_PORT/healthz")
expect "rtrankd /healthz status" '"status":"ok"' "$out"
expect "rtrankd /healthz epoch" '"epoch":0' "$out"
expect "rtrankd /healthz nodes" '"nodes":4983' "$out"

out=$(curl -s "localhost:$RT_PORT/rank" -d '{
    "query": ["term:spatio", "term:temporal", "term:data"],
    "k": 3, "type": "venue", "method": "auto"
}')
expect "README/API.md rank query method" '"method":"exact"' "$out"
expect "README/API.md rank query top venue" '"label":"venue:Spatio-Temporal Databases"' "$out"
expect "README/API.md rank query converged" '"converged":true' "$out"

out=$(curl -s "localhost:$RT_PORT/v1/epoch")
expect "rtrankd /v1/epoch before mutation" '"epoch":0' "$out"

out=$(curl -s "localhost:$RT_PORT/v1/edges" -d '{
    "add_nodes": [{"type": "term", "label": "term:streaming"}],
    "set": [{"from": "term:streaming", "to": "venue:VLDB",
             "weight": 2, "undirected": true}]
}')
expect "/v1/edges commit epoch" '"epoch":1' "$out"
expect "/v1/edges node count" '"nodes":4984' "$out"
expect "/v1/edges staged ops" '"added_nodes":1' "$out"

out=$(curl -s "localhost:$RT_PORT/v1/epoch")
expect "rtrankd /v1/epoch after mutation" '"epoch":1' "$out"

out=$(curl -s "localhost:$RT_PORT/rank" -d '{"query": ["term:streaming"], "k": 2}')
expect "rank against ingested node" '"label":"venue:VLDB"' "$out"

out=$(curl -s -o /dev/null -w '%{http_code}' "localhost:$RT_PORT/v1/edges" -d '{}')
[ "$out" = "400" ] || fail "empty mutation answered $out, want 400"
echo "  ok: empty mutation rejected with 400"

# The /metrics exposition documented in docs/OPERATIONS.md: the epoch gauge
# reflects the mutation above, HTTP traffic is counted by route and code
# (including the 400 we just provoked), and the engine families carry the
# queries this script ran.
out=$(curl -s "localhost:$RT_PORT/metrics")
expect "rtrankd /metrics epoch gauge" 'rtrank_epoch 1' "$out"
expect "rtrankd /metrics rank traffic" 'rtrank_http_requests_total{path="/rank",code="200"} 2' "$out"
expect "rtrankd /metrics rejected mutation counted" 'rtrank_http_requests_total{path="/v1/edges",code="400"} 1' "$out"
expect "rtrankd /metrics query outcomes" 'rtrank_engine_queries_total{method="exact",outcome="ok"}' "$out"
expect "rtrankd /metrics latency quantile" 'rtrank_engine_query_latency_seconds{method="exact",quantile="0.99"}' "$out"
expect "rtrankd /metrics shed counter exposed" 'rtrank_http_requests_shed_total 0' "$out"
expect "rtrankd /metrics fleet lag gauge" 'rtrank_fleet_epoch_lag 0' "$out"

# The anytime-budget examples documented in docs/API.md ("Query budgets and
# degraded results"): a starved round cap returns 200 with the degraded
# certificate, a budget that dies before any venue is reachable returns 504,
# and the degradations land on the documented metric family.
out=$(curl -s "localhost:$RT_PORT/rank" -d '{
    "query": ["term:spatio", "term:temporal", "term:data"],
    "k": 3, "type": "venue", "method": "2sbound", "epsilon": 0,
    "budget": {"max_rounds": 2}
}')
expect "API.md budgeted rank degraded" '"degraded":true' "$out"
expect "API.md budgeted rank not converged" '"converged":false' "$out"
expect "API.md budgeted rank certificate" '"certified_k":' "$out"
expect "API.md budgeted rank residual" '"achieved_epsilon":' "$out"
expect "API.md budgeted rank best venue" '"label":"venue:Spatio-Temporal Databases"' "$out"

out=$(curl -s -o /dev/null -w '%{http_code}' "localhost:$RT_PORT/rank" -d '{
    "query": ["term:spatio"], "k": 3, "type": "venue",
    "method": "2sbound", "budget": {"max_rounds": 1}
}')
[ "$out" = "504" ] || fail "budget with nothing certifiable answered $out, want 504"
echo "  ok: budget with nothing certifiable rejected with 504"

out=$(curl -s "localhost:$RT_PORT/metrics")
expect "rtrankd /metrics degraded counter" 'rtrank_engine_query_degraded_total{method="2sbound"} 2' "$out"
expect "rtrankd /metrics certified-k histogram" 'rtrank_engine_query_certified_k_count{method="2sbound"} 2' "$out"

echo "docs_examples: gpserver examples (docs/API.md)"
out=$(curl -s "localhost:$GP_PORT/healthz")
expect "gpserver /healthz" '"status":"ok"' "$out"
expect "gpserver /healthz stripe" '"stripe":0' "$out"
expect "gpserver /healthz rows" '"rows":1072' "$out"

info=$(curl -s "localhost:$GP_PORT/v1/info")
expect "gpserver /v1/info protocol" '"protocol":1' "$info"
expect "gpserver /v1/info nodes" '"nodes":2143' "$info"
expect "gpserver /v1/info epoch" '"epoch":0' "$info"
content=$(printf '%s' "$info" | grep -oE '"content":[0-9]+' | head -1 | cut -d: -f2)
[ -n "$content" ] || fail "no content fingerprint in /v1/info: $info"

out=$(curl -s "localhost:$GP_PORT/metrics")
expect "gpserver /metrics stripe rows" 'gpserver_stripe_rows 1072' "$out"
expect "gpserver /metrics stripe epoch" 'gpserver_stripe_epoch 0' "$out"
expect "gpserver /metrics route traffic" 'gpserver_http_requests_total{path="/v1/info",code="200"}' "$out"

if command -v python3 >/dev/null 2>&1; then
    out=$(curl -s "localhost:$GP_PORT/v1/outdegs" |
        python3 -c 'import struct,sys; b=sys.stdin.buffer.read();
v=struct.unpack("<%di"%(len(b)//4), b)
print(len(v), "rows; degree of node 0:", v[0])')
    expect "API.md outdegs fixture" '1072 rows; degree of node 0: 45' "$out"

    # The documented /v1/rows example: fetch nodes 0 and 2, decode the
    # header and the first row. (Runs before the retag example below, which
    # rebinds the stripe's identity.)
    out=$(python3 -c 'import struct,sys; sys.stdout.buffer.write(struct.pack("<2i", 0, 2))' |
        curl -s --data-binary @- -H 'Content-Type: application/octet-stream' \
            "localhost:$GP_PORT/v1/rows" |
        python3 -c 'import struct,sys; b=sys.stdin.buffer.read();
epoch,content,count=struct.unpack_from("<QII", b)
node,outsum,outdeg,indeg=struct.unpack_from("<idII", b, 16)
print("epoch",epoch,"content",content,"rows",count,
      "| first row: node",node,"outSum",round(outsum,4),"out",outdeg,"in",indeg)')
    expect "API.md rows fixture" \
        'epoch 0 content 3730835707 rows 2 | first row: node 0 outSum 45.0 out 45 in 45' "$out"
else
    echo "  skip: python3 not available, binary rows/outdegs examples not replayed"
fi

out=$(curl -s -o /dev/null -w '%{http_code}' --data-binary 'xyz' \
    "localhost:$GP_PORT/v1/rows")
[ "$out" = "400" ] || fail "misaligned rows request answered $out, want 400"
echo "  ok: misaligned rows request rejected with 400"

out=$(curl -s -X POST "localhost:$GP_PORT/v1/stripe/retag?graph=123456&epoch=1&content=$content")
expect "retag adopts identity" '"graph":123456' "$out"
expect "retag adopts epoch" '"epoch":1' "$out"

# Stripe gauges read the worker's state at scrape time, so the retag above
# is already visible on the very next scrape.
out=$(curl -s "localhost:$GP_PORT/metrics")
expect "gpserver /metrics epoch after retag" 'gpserver_stripe_epoch 1' "$out"

out=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    "localhost:$GP_PORT/v1/stripe/retag?graph=1&epoch=2&content=999")
[ "$out" = "409" ] || fail "mismatched retag answered $out, want 409"
echo "  ok: mismatched retag rejected with 409"

if command -v python3 >/dev/null 2>&1; then
    out=$(python3 -c 'import struct,sys; n=2143; v=[0.0]*n; v[0]=1.0;
sys.stdout.buffer.write(struct.pack("<%dd"%n,*v))' |
        curl -s --data-binary @- -H 'Content-Type: application/octet-stream' \
            "localhost:$GP_PORT/v1/multiply?dir=in" |
        python3 -c 'import struct,sys; b=sys.stdin.buffer.read();
v=struct.unpack("<%dd"%(len(b)//8), b);
print(len(v), "entries; first nonzero:", next((i,x) for i,x in enumerate(v) if x))')
    expect "API.md multiply fixture" '1072 entries; first nonzero: (626, 1.0)' "$out"
else
    echo "  skip: python3 not available, binary multiply example not replayed"
fi

echo "docs_examples: fleet membership examples (docs/API.md, docs/OPERATIONS.md)"
# The registered worker should be admitted and — with 2 stripes, R=2, one
# live member — end up serving both stripes. Registration, the membership
# tick and the stripe ship are all asynchronous, so poll briefly.
fleet_id="127.0.0.1:$FW_PORT"
converged=""
for _ in $(seq 1 120); do
    metrics=$(curl -s "localhost:$FW_PORT/metrics")
    case "$metrics" in
        *'gpserver_stripes_held 2'*) converged=1; break ;;
    esac
    sleep 0.25
done
[ -n "$converged" ] || fail "registered worker never received its 2 stripes: $(curl -s "localhost:$FLEET_PORT/v1/fleet")"
echo "  ok: registered worker was shipped both stripes (gpserver_stripes_held 2)"

out=$(curl -s "localhost:$FLEET_PORT/v1/fleet")
expect "/v1/fleet member admitted" "\"id\":\"$fleet_id\"" "$out"
expect "/v1/fleet member alive" '"state":"alive"' "$out"
expect "/v1/fleet census" '"alive":1' "$out"
expect "/v1/fleet replication" '"replication":2' "$out"
expect "/v1/fleet placement" "\"placement\":[[\"$fleet_id\"],[\"$fleet_id\"]]" "$out"

# A distributed query served entirely by the self-organized fleet.
out=$(curl -s "localhost:$FLEET_PORT/rank" -d '{
    "query": ["term:spatio", "term:temporal", "term:data"],
    "k": 3, "type": "venue", "method": "distributed"
}')
expect "fleet-served distributed query method" '"method":"distributed"' "$out"
expect "fleet-served distributed query top venue" '"label":"venue:Spatio-Temporal Databases"' "$out"
expect "fleet-served distributed query converged" '"converged":true' "$out"

# The fleet census on /metrics (docs/OPERATIONS.md).
out=$(curl -s "localhost:$FLEET_PORT/metrics")
expect "fleet /metrics alive census" 'rtrank_fleet_members{state="alive"} 1' "$out"
expect "fleet /metrics replication" 'rtrank_fleet_replication 2' "$out"
expect "fleet /metrics failover counter exposed" 'rtrank_fleet_failovers_total' "$out"

# A heartbeat for an unknown member is 404 — the signal that tells an
# evicted (or coordinator-restart-orphaned) worker to re-register.
out=$(curl -s -o /dev/null -w '%{http_code}' "localhost:$FLEET_PORT/v1/heartbeat" \
    -d '{"id": "ghost"}')
[ "$out" = "404" ] || fail "unknown-member heartbeat answered $out, want 404"
echo "  ok: unknown-member heartbeat rejected with 404"

# Registration bodies are strict JSON: unknown fields are rejected.
out=$(curl -s -o /dev/null -w '%{http_code}' "localhost:$FLEET_PORT/v1/register" \
    -d '{"id": "w7", "addr": "http://10.0.0.7:7001", "extra": true}')
[ "$out" = "400" ] || fail "register with unknown field answered $out, want 400"
echo "  ok: register with unknown field rejected with 400"

# The documented manual register + drain pair. (The fake member is drained
# right away so the reconcile loop stops considering it a placement target.)
out=$(curl -s "localhost:$FLEET_PORT/v1/register" \
    -d '{"id": "w7", "addr": "http://10.0.0.7:7001"}')
expect "API.md register reply" '"ok":true' "$out"
expect "API.md register echoes replication" '"replication":2' "$out"
expect "API.md register echoes stripes" '"stripes":2' "$out"
out=$(curl -s "localhost:$FLEET_PORT/v1/drain" -d '{"id": "w7"}')
expect "API.md drain reply" '"draining":"w7"' "$out"

echo "docs_examples: all documented examples verified"
