package roundtriprank

// Benchmark harness: one benchmark per table/figure of the paper's evaluation
// (Sect. VI). Each benchmark runs a laptop-scale version of the corresponding
// experiment and reports its headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the shape of every figure. cmd/benchrunner runs the same
// experiments at larger scale with full tables; EXPERIMENTS.md records the
// paper-vs-measured comparison.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"roundtriprank/internal/baselines"
	"roundtriprank/internal/core"
	"roundtriprank/internal/datasets"
	"roundtriprank/internal/eval"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/tasks"
	"roundtriprank/internal/testgraphs"
	"roundtriprank/internal/topk"
	"roundtriprank/internal/walk"
)

var (
	benchOnce   sync.Once
	benchBibNet *datasets.BibNet
	benchQLog   *datasets.QLog
	benchWalk   = walk.Params{Alpha: 0.25, Tol: 1e-8, MaxIter: 120}
)

const (
	benchScale      = 0.12
	benchQueries    = 24
	benchEffQueries = 6
)

func benchData(b *testing.B) (*datasets.BibNet, *datasets.QLog) {
	b.Helper()
	benchOnce.Do(func() {
		net, err := datasets.GenerateBibNet(datasets.ScaledBibNetConfig(benchScale))
		if err != nil {
			b.Fatalf("GenerateBibNet: %v", err)
		}
		qlog, err := datasets.GenerateQLog(datasets.ScaledQLogConfig(benchScale))
		if err != nil {
			b.Fatalf("GenerateQLog: %v", err)
		}
		benchBibNet, benchQLog = net, qlog
	})
	return benchBibNet, benchQLog
}

func benchInstances(b *testing.B, task tasks.Task, n int) (*graph.Graph, []tasks.Instance) {
	b.Helper()
	net, qlog := benchData(b)
	switch task {
	case tasks.TaskAuthor, tasks.TaskVenue:
		inst, err := tasks.SampleBibNet(net, task, n, 42+int64(task))
		if err != nil {
			b.Fatalf("SampleBibNet: %v", err)
		}
		return net.Graph, inst
	default:
		inst, err := tasks.SampleQLog(qlog, task, n, 42+int64(task))
		if err != nil {
			b.Fatalf("SampleQLog: %v", err)
		}
		return qlog.Graph, inst
	}
}

func reportTaskNDCG(b *testing.B, task tasks.Task, measures []baselines.Measure, n int) {
	g, inst := benchInstances(b, task, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.EvaluateTask(context.Background(), g, inst, measures, []int{5}, benchWalk, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range res {
				b.ReportMetric(r.MeanNDCG[5], "NDCG@5_"+sanitize(r.Name))
			}
		}
	}
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, c := range name {
		switch {
		case c == ' ' || c == '/' || c == '+':
			out = append(out, '_')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// BenchmarkFig4Toy regenerates Fig. 4: the exact round-trip probabilities on
// the toy graph of Fig. 2 with constant L = L' = 2.
func BenchmarkFig4Toy(b *testing.B) {
	toy := testgraphs.NewToy()
	var probs []float64
	for i := 0; i < b.N; i++ {
		var err error
		probs, err = core.EnumerateRoundTrips(context.Background(), toy.Graph, toy.T1, 2, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(probs[toy.V1], "p_v1")
	b.ReportMetric(probs[toy.V2], "p_v2")
	b.ReportMetric(probs[toy.V3], "p_v3")
	b.ReportMetric(probs[toy.T1], "p_t1")
}

// monoMeasures are the Fig. 5 competitors.
func monoMeasures() []baselines.Measure {
	return []baselines.Measure{
		baselines.NewRoundTripRank(),
		baselines.NewFRank(),
		baselines.NewTRank(),
		baselines.NewSimRank(),
		baselines.NewAdamicAdar(),
	}
}

// dualMeasures are the Fig. 9 competitors (fixed trade-off baselines).
func dualMeasures(beta float64) []baselines.Measure {
	return []baselines.Measure{
		baselines.NewRoundTripRankPlus(beta),
		baselines.NewTCommute(10),
		baselines.NewObjSqrtInv(0.25),
		baselines.NewHarmonic(),
		baselines.NewArithmetic(),
	}
}

// BenchmarkFig5 regenerates Fig. 5 (one sub-benchmark per task): NDCG@5 of
// RoundTripRank against the mono-sensed baselines.
func BenchmarkFig5(b *testing.B) {
	for _, task := range tasks.AllTasks() {
		b.Run(sanitize(task.String()), func(b *testing.B) {
			reportTaskNDCG(b, task, monoMeasures(), benchQueries)
		})
	}
}

// BenchmarkFig6 and BenchmarkFig7 regenerate the illustrative venue rankings
// for the two topic queries; the reported metric is the rank position (1-based)
// of the topic's specific venue under RoundTripRank.
func BenchmarkFig6(b *testing.B) {
	benchIllustrative(b, "spatio temporal data", "Spatio-Temporal Databases")
}

// BenchmarkFig7 is the "semantic web" counterpart of Fig. 7.
func BenchmarkFig7(b *testing.B) {
	benchIllustrative(b, "semantic web", "International Semantic Web Conference")
}

func benchIllustrative(b *testing.B, topic, specificVenue string) {
	net, _ := benchData(b)
	terms := net.QueryTermsFor(topic)
	if len(terms) == 0 {
		b.Fatalf("unknown topic %q", topic)
	}
	var venues []string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		venues, err = eval.IllustrativeRanking(context.Background(), net.Graph, terms, baselines.NewRoundTripRank(), datasets.TypeVenue, 10, benchWalk)
		if err != nil {
			b.Fatal(err)
		}
	}
	rank := 0.0
	for i, v := range venues {
		if v == specificVenue {
			rank = float64(i + 1)
			break
		}
	}
	b.ReportMetric(rank, "specific_venue_rank")
}

// BenchmarkFig8 regenerates the specificity-bias sweep: NDCG@5 of
// RoundTripRank+ at β = 0, 0.5 and 1 per task. The paper's claim is that the
// extremes underperform the interior.
func BenchmarkFig8(b *testing.B) {
	betas := []float64{0, 0.25, 0.5, 0.75, 1}
	for _, task := range tasks.AllTasks() {
		b.Run(sanitize(task.String()), func(b *testing.B) {
			g, inst := benchInstances(b, task, benchQueries)
			var sweep map[float64]float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				sweep, err = eval.SweepBeta(context.Background(), g, inst, betas, 5, benchWalk)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, beta := range betas {
				b.ReportMetric(sweep[beta], "NDCG@5_beta_"+sanitize(floatLabel(beta)))
			}
		})
	}
}

func floatLabel(f float64) string {
	switch f {
	case 0:
		return "0.00"
	case 0.25:
		return "0.25"
	case 0.5:
		return "0.50"
	case 0.75:
		return "0.75"
	case 1:
		return "1.00"
	default:
		return "x"
	}
}

// BenchmarkFig9 regenerates Fig. 9: RoundTripRank+ (balanced β, the default
// fallback) against the fixed dual-sensed baselines.
func BenchmarkFig9(b *testing.B) {
	for _, task := range tasks.AllTasks() {
		b.Run(sanitize(task.String()), func(b *testing.B) {
			reportTaskNDCG(b, task, dualMeasures(0.5), benchQueries)
		})
	}
}

// BenchmarkFig10 regenerates Fig. 10: RoundTripRank+ against the β-customized
// dual-sensed baselines (all tuned to the same β here, the benchmark-scale
// stand-in for per-family dev-query tuning done by cmd/benchrunner -fig 10).
func BenchmarkFig10(b *testing.B) {
	customized := func(beta float64) []baselines.Measure {
		return []baselines.Measure{
			baselines.NewRoundTripRankPlus(beta),
			baselines.NewTCommutePlus(10, beta),
			baselines.NewObjSqrtInvPlus(0.25, beta),
			baselines.NewHarmonicPlus(beta),
			baselines.NewArithmeticPlus(beta),
		}
	}
	for _, task := range tasks.AllTasks() {
		b.Run(sanitize(task.String()), func(b *testing.B) {
			reportTaskNDCG(b, task, customized(0.5), benchQueries)
		})
	}
}

// BenchmarkFig11a regenerates the query-time comparison of Fig. 11(a): Naive
// versus the four online schemes at slack ε = 0.01. The per-op time of each
// sub-benchmark is the figure's y-axis.
func BenchmarkFig11a(b *testing.B) {
	net, _ := benchData(b)
	g := net.Graph
	queries := benchEffQueryNodes(net)
	b.Run("Naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			if _, _, err := topk.Naive(context.Background(), g, walk.SingleNode(q), topk.Options{K: 10, Alpha: 0.25, Beta: 0.5}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, scheme := range []topk.Scheme{topk.Scheme2SBound, topk.SchemeGS, topk.SchemeGupta, topk.SchemeSarkar} {
		b.Run(sanitize(scheme.String()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				opt := topk.Options{K: 10, Epsilon: 0.01, Alpha: 0.25, Beta: 0.5, Scheme: scheme}
				if _, err := topk.TopK(context.Background(), g, walk.SingleNode(q), opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchEffQueryNodes(net *datasets.BibNet) []graph.NodeID {
	queries := make([]graph.NodeID, 0, benchEffQueries)
	for i := 0; i < benchEffQueries; i++ {
		queries = append(queries, net.Papers[(i*7919)%len(net.Papers)])
	}
	return queries
}

// BenchmarkFig11b regenerates the approximation-quality side of Fig. 11(b):
// NDCG, precision and Kendall's tau of 2SBound against the exact ranking at
// each slack.
func BenchmarkFig11b(b *testing.B) {
	net, _ := benchData(b)
	queries := benchEffQueryNodes(net)
	for _, eps := range []float64{0.01, 0.02, 0.03} {
		b.Run("eps="+floatEps(eps), func(b *testing.B) {
			var rows []eval.EfficiencyResult
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = eval.EvaluateEfficiency(context.Background(), net.Graph, eval.EfficiencyConfig{
					K: 10, Queries: queries, Epsilons: []float64{eps},
					Schemes: []topk.Scheme{topk.Scheme2SBound},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rows[0].NDCG, "NDCG")
			b.ReportMetric(rows[0].Precision, "precision")
			b.ReportMetric(rows[0].KendallTau, "kendall_tau")
			b.ReportMetric(rows[0].MeanTimeMS, "query_ms")
		})
	}
}

// BenchmarkFig12 regenerates the snapshot study of Fig. 12: active-set size
// and query time on five cumulative snapshots of each graph.
func BenchmarkFig12(b *testing.B) {
	net, qlog := benchData(b)
	run := func(b *testing.B, snaps []*graph.Subgraph) {
		var rows []eval.SnapshotResult
		for i := 0; i < b.N; i++ {
			var err error
			rows, err = eval.EvaluateScalability(context.Background(), snaps, []string{"t1", "t2", "t3", "t4", "t5"}, benchEffQueries, 0.01, 10, 7)
			if err != nil {
				b.Fatal(err)
			}
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.SnapshotBytes)/1024, "snapshot_kb_"+r.Label)
			b.ReportMetric(r.ActiveSetBytes/1024, "active_kb_"+r.Label)
			b.ReportMetric(r.QueryTimeMS, "query_ms_"+r.Label)
		}
	}
	b.Run("BibNet", func(b *testing.B) {
		snaps, err := net.Snapshots(5)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		run(b, snaps)
	})
	b.Run("QLog", func(b *testing.B) {
		snaps, err := qlog.Snapshots(5)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		run(b, snaps)
	})
}

// BenchmarkFig13 regenerates the rate-of-growth comparison of Fig. 13: the
// snapshot grows much faster than the active set and the query time.
func BenchmarkFig13(b *testing.B) {
	net, _ := benchData(b)
	snaps, err := net.Snapshots(5)
	if err != nil {
		b.Fatal(err)
	}
	var gr *eval.GrowthRates
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.EvaluateScalability(context.Background(), snaps, nil, benchEffQueries, 0.01, 10, 7)
		if err != nil {
			b.Fatal(err)
		}
		gr, err = eval.ComputeGrowthRates(rows)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(gr.Snapshot) - 1
	b.ReportMetric(gr.Snapshot[last], "snapshot_growth")
	b.ReportMetric(gr.Active[last], "active_set_growth")
	b.ReportMetric(gr.Time[last], "query_time_growth")
}

func floatEps(e float64) string {
	switch e {
	case 0.01:
		return "0.01"
	case 0.02:
		return "0.02"
	case 0.03:
		return "0.03"
	default:
		return "x"
	}
}

// BenchmarkExactRoundTripRank measures the cost of one exact RoundTripRank
// computation (both solvers) on the benchmark BibNet, the unit of work the
// effectiveness experiments repeat per query and per measure.
func BenchmarkExactRoundTripRank(b *testing.B) {
	net, _ := benchData(b)
	q := walk.SingleNode(net.Papers[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compute(context.Background(), net.Graph, q, core.Params{Walk: benchWalk, Beta: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWalkKernels measures each iterative solver on the benchmark BibNet
// in both execution modes: CSR is the parallel flat-array kernel path, and
// Generic forces the interface-iteration fallback by hiding the CSR behind an
// opaque wrapper — which is exactly the pre-CSR implementation, so the
// CSR/Generic ratio is the kernel speedup. cmd/benchrunner -fig kernels runs
// the same comparison and records it in BENCH_PR2.json.
func BenchmarkWalkKernels(b *testing.B) {
	net, _ := benchData(b)
	q := walk.SingleNode(net.Papers[0])
	views := []struct {
		name string
		view graph.View
	}{
		{"CSR", net.Graph},
		{"Generic", struct{ graph.View }{net.Graph}},
	}
	for _, v := range views {
		b.Run("FRank/"+v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := walk.FRank(context.Background(), v.view, q, benchWalk); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("TRank/"+v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := walk.TRank(context.Background(), v.view, q, benchWalk); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("GlobalPageRank/"+v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := walk.GlobalPageRank(context.Background(), v.view, 0.15, benchWalk.Tol, benchWalk.MaxIter); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRankBatch measures the engine's concurrent batch path with the
// vector cache: the same 8 query nodes ranked twice, so the second batch is
// answered entirely from cached single-node vectors.
func BenchmarkRankBatch(b *testing.B) {
	net, _ := benchData(b)
	engine, err := NewEngine(net.Graph)
	if err != nil {
		b.Fatal(err)
	}
	var reqs []Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, Request{
			Query:  SingleNode(net.Papers[(i*7919)%len(net.Papers)]),
			K:      10,
			Method: Exact,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.RankBatch(context.Background(), reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnline2SBound measures one online top-10 query with the default
// slack, the unit of work behind Fig. 11-13, in both execution modes: Flat
// is the pooled scratch-state path (the serving default on CSR views), Map
// forces the pre-flat map-based searcher via Options.ForceMap — which keeps
// the CSR-streaming BCA fast path the map searcher always had, so the ratio
// isolates exactly the scratch-state rewrite. cmd/benchrunner -fig online
// runs the same comparison per scheme and records it in BENCH_PR5.json.
func BenchmarkOnline2SBound(b *testing.B) {
	net, _ := benchData(b)
	queries := benchEffQueryNodes(net)
	modes := []struct {
		name     string
		forceMap bool
	}{{"Flat", false}, {"Map", true}}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				opt := topk.Options{K: 10, Epsilon: 0.01, Alpha: 0.25, Beta: 0.5, ForceMap: m.forceMap}
				if _, err := topk.TopK(context.Background(), net.Graph, walk.SingleNode(q), opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOnlineEngineRank measures the full serving path of one online
// query — request planning, the pooled 2SBound search, response assembly —
// through Engine.Rank, serially and with GOMAXPROCS goroutines sharing the
// engine (RunParallel), the configuration behind the queries/sec figure in
// BENCH_PR5.json.
func BenchmarkOnlineEngineRank(b *testing.B) {
	net, _ := benchData(b)
	engine, err := NewEngine(net.Graph)
	if err != nil {
		b.Fatal(err)
	}
	queries := benchEffQueryNodes(net)
	req := func(i int) Request {
		return Request{
			Query:   SingleNode(queries[i%len(queries)]),
			K:       10,
			Epsilon: 0.01,
			Method:  TwoSBound,
		}
	}
	b.Run("Serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Rank(context.Background(), req(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Parallel", func(b *testing.B) {
		b.ReportAllocs()
		var next atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(next.Add(1))
				if _, err := engine.Rank(context.Background(), req(i)); err != nil {
					// b.Fatal must not run on a RunParallel worker goroutine.
					b.Error(err)
					return
				}
			}
		})
	})
}
