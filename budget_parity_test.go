package roundtriprank

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"roundtriprank/internal/fleet"
	"roundtriprank/internal/graph"
	"roundtriprank/internal/topk"
	"roundtriprank/internal/walk"
)

// Budget parity suite: the anytime contract's determinism clause. A rounds-
// or touched-capped budget must produce the same degraded result AND the
// same certificate — bit for bit — on every execution path: flat local,
// packed CSR, remote row-serving, and remote with a fleet member dead.

// budgetSweep is the budget grid the parity tests drive: a starved round
// cap, a mid one, a touched-capped point and a frontier-capped point.
func budgetSweep() []Budget {
	return []Budget{
		{MaxRounds: 1},
		{MaxRounds: 3},
		{MaxRounds: 5, MaxTouched: 200},
		{MaxRounds: 4, FrontierCap: 2},
	}
}

// requireSameCertificate extends requireBitIdentical to the anytime fields:
// degradation flags, certified prefix length and achieved epsilon must agree
// exactly (the epsilon bitwise — it is computed from the same bounds).
func requireSameCertificate(t *testing.T, label string, got, want *Response) {
	t.Helper()
	if got.Converged != want.Converged || got.Degraded != want.Degraded {
		t.Fatalf("%s: converged/degraded %v/%v, want %v/%v",
			label, got.Converged, got.Degraded, want.Converged, want.Degraded)
	}
	if got.CertifiedK != want.CertifiedK ||
		math.Float64bits(got.AchievedEpsilon) != math.Float64bits(want.AchievedEpsilon) {
		t.Fatalf("%s: certificate %d/%g, want %d/%g (not bit-identical)",
			label, got.CertifiedK, got.AchievedEpsilon, want.CertifiedK, want.AchievedEpsilon)
	}
	requireBitIdentical(t, label, got, want)
}

// TestPackedBudgetParity runs the budget sweep at eps=0 through a flat and a
// packed engine and requires identical degraded results and certificates.
// Budgeted queries are cheap by construction, so unlike the eps=0
// convergence tests this sweeps every R-MAT query in every mode.
func TestPackedBudgetParity(t *testing.T) {
	ctx := context.Background()
	degraded := 0
	for _, pg := range packedParityGraphs(t) {
		flat, err := NewEngine(pg.graph)
		if err != nil {
			t.Fatalf("%s: NewEngine(flat): %v", pg.name, err)
		}
		packed, err := NewEngine(graph.Pack(pg.graph))
		if err != nil {
			t.Fatalf("%s: NewEngine(packed): %v", pg.name, err)
		}
		for _, q := range pg.queries {
			for bi, b := range budgetSweep() {
				b := b
				req := Request{Query: SingleNode(q), K: 10, Epsilon: 0, Method: TwoSBound, Budget: &b}
				want, err := flat.Rank(ctx, req)
				if err != nil {
					t.Fatalf("%s q%d budget %d: flat: %v", pg.name, q, bi, err)
				}
				got, err := packed.Rank(ctx, req)
				if err != nil {
					t.Fatalf("%s q%d budget %d: packed: %v", pg.name, q, bi, err)
				}
				requireSameCertificate(t, fmt.Sprintf("%s/q%d/budget%d", pg.name, q, bi), got, want)
				if want.Degraded {
					degraded++
				}
				if want.CertifiedK > len(want.Results) {
					t.Fatalf("%s q%d budget %d: CertifiedK %d > %d results",
						pg.name, q, bi, want.CertifiedK, len(want.Results))
				}
			}
		}
	}
	if degraded == 0 {
		t.Errorf("no budget in the sweep degraded any query; the parity claim is vacuous")
	}
}

// TestRemoteBudgetParity pins the same determinism across the wire: a
// budgeted 2sbound-remote answer — result, certificate, and degradation
// flags — matches the budgeted local search bit for bit, and its network
// footprint stays within the budgeted searcher's touched set.
func TestRemoteBudgetParity(t *testing.T) {
	ctx := context.Background()
	for _, pg := range parityGraphs() {
		engine, err := NewEngine(pg.graph, WithWorkers(httpWorkerCluster(t, pg.graph, 2)...))
		if err != nil {
			t.Fatalf("%s: NewEngine: %v", pg.name, err)
		}
		for _, q := range pg.queries {
			for bi, b := range budgetSweep() {
				b := b
				t.Run(fmt.Sprintf("%s/q%d/budget%d", pg.name, q, bi), func(t *testing.T) {
					req := Request{Query: SingleNode(q), K: 10, Epsilon: 0, Budget: &b}
					req.Method = TwoSBound
					local, err := engine.Rank(ctx, req)
					if err != nil {
						t.Fatalf("local: %v", err)
					}
					req.Method = TwoSBoundRemote
					remote, err := engine.Rank(ctx, req)
					if err != nil {
						t.Fatalf("remote: %v", err)
					}
					requireSameCertificate(t, "remote-vs-local", remote, local)
					if remote.Rows == nil {
						t.Fatalf("remote response carries no row stats")
					}
					// O(touched) holds under a budget too: the cap truncates
					// the working set, and the remote path must not prefetch
					// rows the truncated searcher never reads.
					res, err := topk.TopK(ctx, pg.graph, walk.SingleNode(q), topk.Options{
						K: 10, Epsilon: 0, Alpha: 0.25, Beta: 0.5, Scheme: topk.Scheme2SBound,
						Budget: &topk.Budget{MaxRounds: b.MaxRounds, MaxTouched: b.MaxTouched, FrontierCap: b.FrontierCap},
					})
					if err != nil {
						t.Fatalf("budgeted local flat search: %v", err)
					}
					if remote.Rows.Fetched > int64(res.Touched) {
						t.Errorf("fetched %d rows, budgeted searcher touches only %d", remote.Rows.Fetched, res.Touched)
					}
				})
			}
		}
	}
}

// TestChaosBudgetedRemoteParity kills a fleet member and requires the
// budgeted remote answer served through the surviving replicas to stay
// bit-identical to the budgeted local baseline — the degraded path must not
// get a second kind of degraded under failover.
func TestChaosBudgetedRemoteParity(t *testing.T) {
	ctx := context.Background()
	pg := parityGraphs()[2] // cycle: every query's walk crosses all stripes
	m, workers := chaosFleetCluster(t, pg.graph, 3, fleet.Options{})
	base, err := NewEngine(pg.graph, WithFleet(m))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	q := pg.queries[0]
	for bi, b := range budgetSweep() {
		b := b
		t.Run(fmt.Sprintf("budget%d", bi), func(t *testing.T) {
			req := Request{Query: SingleNode(q), K: 10, Epsilon: 0, Budget: &b}
			req.Method = TwoSBound
			local, err := base.Rank(ctx, req)
			if err != nil {
				t.Fatalf("local baseline: %v", err)
			}
			workers[bi%len(workers)].Kill()
			defer restartWorker(t, workers[bi%len(workers)])
			// A fresh engine keeps the row cache cold so the budgeted query
			// actually crosses the network with the member down.
			engine, err := NewEngine(pg.graph, WithFleet(m))
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			req.Method = TwoSBoundRemote
			remote, err := engine.Rank(ctx, req)
			if err != nil {
				t.Fatalf("budgeted remote with a member dead: %v", err)
			}
			requireSameCertificate(t, "chaos-budgeted", remote, local)
		})
	}
}

// TestBudgetValidation pins the request-level contract: negative budget
// fields are a ValidationError, not silent clamping.
func TestBudgetValidation(t *testing.T) {
	toy := parityGraphs()[0]
	engine, err := NewEngine(toy.graph)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for _, b := range []Budget{
		{MaxRounds: -1},
		{MaxTouched: -5},
		{FrontierCap: -2},
		{FlushMargin: -time.Second},
	} {
		b := b
		_, err := engine.Rank(context.Background(), Request{
			Query: SingleNode(toy.queries[0]), K: 3, Method: TwoSBound, Budget: &b,
		})
		var verr *ValidationError
		if !errors.As(err, &verr) {
			t.Errorf("budget %+v: got %v, want ValidationError", b, err)
		}
	}
}

// TestDeadlineDerivedBudgetDegrades pins the serve-layer contract at the
// engine boundary: a context deadline closer than the flush margin converts
// into a soft stop after the first round — the query returns a certified
// partial result instead of running into the deadline and erroring.
func TestDeadlineDerivedBudgetDegrades(t *testing.T) {
	// The cycle's antipodes tie exactly, so at eps=0 the search can never
	// converge in one round — the stop is deterministically the derived
	// deadline, not convergence racing it.
	pg := parityGraphs()[2]
	engine, err := NewEngine(pg.graph)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	resp, err := engine.Rank(ctx, Request{
		Query: SingleNode(pg.queries[0]), K: 10, Epsilon: 0, Method: TwoSBound,
		Budget: &Budget{FlushMargin: 2 * time.Minute},
	})
	if err != nil {
		t.Fatalf("deadline-derived budget must degrade, not error: %v", err)
	}
	if !resp.Degraded || resp.Converged {
		t.Errorf("degraded=%v converged=%v, want degraded partial result", resp.Degraded, resp.Converged)
	}
	if len(resp.Results) == 0 {
		t.Errorf("degraded response carries no best-effort results")
	}
	if resp.CertifiedK > len(resp.Results) {
		t.Errorf("CertifiedK %d > %d results", resp.CertifiedK, len(resp.Results))
	}
}
