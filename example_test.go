package roundtriprank_test

import (
	"context"
	"fmt"

	"roundtriprank"
)

// Example builds a tiny bibliographic graph and runs the canonical "find
// authors for this paper" query through the Engine.
func Example() {
	b := roundtriprank.NewGraphBuilder()
	b.RegisterType(1, "author")
	b.RegisterType(2, "paper")
	alice := b.AddNode(1, "author:alice")
	bob := b.AddNode(1, "author:bob")
	carol := b.AddNode(1, "author:carol")
	p1 := b.AddNode(2, "paper:p1")
	p2 := b.AddNode(2, "paper:p2")
	b.MustAddUndirectedEdge(alice, p1, 2) // alice is p1's lead author
	b.MustAddUndirectedEdge(bob, p1, 1)
	b.MustAddUndirectedEdge(bob, p2, 1)
	b.MustAddUndirectedEdge(carol, p2, 1)
	g := b.MustBuild()

	engine, err := roundtriprank.NewEngine(g)
	if err != nil {
		panic(err)
	}
	resp, err := engine.Rank(context.Background(), roundtriprank.Request{
		Query:  roundtriprank.SingleNode(p1),
		K:      3,
		Filter: &roundtriprank.Filter{Types: []roundtriprank.NodeType{1}, ExcludeQuery: true},
	})
	if err != nil {
		panic(err)
	}
	for i, r := range resp.Results {
		fmt.Printf("%d. %s\n", i+1, g.Label(r.Node))
	}
	// Output:
	// 1. author:alice
	// 2. author:bob
	// 3. author:carol
}

// ExampleEngine_Apply mutates a live graph: a Delta stages a new paper and
// its edges, Apply commits it into a new epoch and swaps the engine's
// serving snapshot atomically.
func ExampleEngine_Apply() {
	b := roundtriprank.NewGraphBuilder()
	b.RegisterType(1, "author")
	b.RegisterType(2, "paper")
	alice := b.AddNode(1, "author:alice")
	p1 := b.AddNode(2, "paper:p1")
	b.MustAddUndirectedEdge(alice, p1, 1)
	g := b.MustBuild()

	engine, err := roundtriprank.NewEngine(g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("epoch %d: %d nodes, %d edges\n", engine.Epoch(), g.NumNodes(), g.NumEdges())

	d := roundtriprank.NewDelta(g)
	p2 := d.AddNode(2, "paper:p2")
	if err := d.SetUndirectedEdge(alice, p2, 1); err != nil {
		panic(err)
	}
	res, err := engine.Apply(context.Background(), d)
	if err != nil {
		panic(err)
	}
	fmt.Printf("epoch %d: %d nodes, %d edges\n", res.Epoch, res.Graph.NumNodes(), res.Graph.NumEdges())

	resp, err := engine.Rank(context.Background(), roundtriprank.Request{
		Query:  roundtriprank.SingleNode(alice),
		K:      2,
		Filter: &roundtriprank.Filter{Types: []roundtriprank.NodeType{2}},
	})
	if err != nil {
		panic(err)
	}
	for _, r := range resp.Results {
		fmt.Println(res.Graph.Label(r.Node))
	}
	// Output:
	// epoch 0: 2 nodes, 2 edges
	// epoch 1: 3 nodes, 4 edges
	// paper:p1
	// paper:p2
}

// ExampleParseMethod shows the wire names of the execution methods, as
// accepted by rtrankd's "method" field and the -method CLI flags.
func ExampleParseMethod() {
	for _, name := range []string{"auto", "exact", "distributed", "2sbound", "g+s"} {
		m, err := roundtriprank.ParseMethod(name)
		if err != nil {
			panic(err)
		}
		fmt.Println(m)
	}
	// Output:
	// auto
	// exact
	// distributed
	// 2SBound
	// G+S
}
