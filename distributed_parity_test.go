package roundtriprank

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"roundtriprank/internal/distributed"
	"roundtriprank/internal/testgraphs"
)

// testgraphsCycle builds a directed cycle with n nodes for impostor-cluster
// tests.
func testgraphsCycle(t testing.TB, n int) *Graph {
	t.Helper()
	return testgraphs.Cycle(n)
}

// httpWorkerCluster stripes g across n gpserver-protocol workers served over
// httptest and returns engine-ready transports.
func httpWorkerCluster(t testing.TB, g *Graph, n int) []Transport {
	t.Helper()
	ts := make([]Transport, n)
	for i := 0; i < n; i++ {
		s, err := distributed.BuildStripe(g, i, n)
		if err != nil {
			t.Fatalf("BuildStripe(%d,%d): %v", i, n, err)
		}
		srv := httptest.NewServer(distributed.NewWorker(s).Handler())
		t.Cleanup(srv.Close)
		ts[i] = DialWorker(srv.URL)
	}
	return ts
}

// TestDistributedParityAgainstExact is the acceptance gate of the networked
// execution path: on every test graph, a query through the Engine's
// Distributed method against ≥2 HTTP workers returns the identical top-K set
// — same nodes, same order, same scores — as the exact in-process solver.
// (Epsilon is irrelevant here: both paths are exact; eps=0 is the Request
// default.)
func TestDistributedParityAgainstExact(t *testing.T) {
	for _, pg := range parityGraphs() {
		for _, workers := range []int{2, 3} {
			engine, err := NewEngine(pg.graph, WithWorkers(httpWorkerCluster(t, pg.graph, workers)...))
			if err != nil {
				t.Fatalf("%s: NewEngine: %v", pg.name, err)
			}
			for _, q := range pg.queries {
				for _, beta := range []float64{0.3, 0.5} {
					req := Request{Query: SingleNode(q), K: 10, Beta: Float64(beta), Epsilon: 0}
					req.Method = Exact
					exact, err := engine.Rank(context.Background(), req)
					if err != nil {
						t.Fatalf("%s q%d: exact: %v", pg.name, q, err)
					}
					req.Method = Distributed
					dist, err := engine.Rank(context.Background(), req)
					if err != nil {
						t.Fatalf("%s q%d: distributed: %v", pg.name, q, err)
					}
					if dist.Method != Distributed || !dist.Converged {
						t.Fatalf("%s q%d: unexpected response meta: %+v", pg.name, q, dist)
					}
					if len(dist.Results) != len(exact.Results) {
						t.Fatalf("%s q%d w%d: distributed returned %d results, exact %d",
							pg.name, q, workers, len(dist.Results), len(exact.Results))
					}
					for i := range exact.Results {
						if dist.Results[i].Node != exact.Results[i].Node {
							t.Errorf("%s q%d w%d beta%.1f rank %d: distributed node %d, exact node %d",
								pg.name, q, workers, beta, i, dist.Results[i].Node, exact.Results[i].Node)
						}
						if dist.Results[i].Score != exact.Results[i].Score {
							t.Errorf("%s q%d w%d beta%.1f rank %d: distributed score %g, exact score %g",
								pg.name, q, workers, beta, i, dist.Results[i].Score, exact.Results[i].Score)
						}
					}
				}
			}
			if rpcs, _ := engine.ClusterStats(); rpcs == 0 {
				t.Errorf("%s: no worker RPCs recorded", pg.name)
			}
		}
	}
}

// TestDistributedFilterParity checks that the declarative Filter compiles to
// the same result restriction on the distributed path as on the exact path.
func TestDistributedFilterParity(t *testing.T) {
	pg := parityGraphs()[0] // the typed toy graph
	engine, err := NewEngine(pg.graph, WithWorkers(httpWorkerCluster(t, pg.graph, 2)...))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	filter := &Filter{Types: []NodeType{2}, ExcludeQuery: true} // papers only
	for _, method := range []Method{Exact, Distributed} {
		resp, err := engine.Rank(context.Background(), Request{
			Query: SingleNode(pg.queries[0]), K: 5, Method: method, Filter: filter,
		})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		for _, r := range resp.Results {
			if pg.graph.Type(r.Node) != 2 {
				t.Errorf("%s: node %d has type %d, want 2", method, r.Node, pg.graph.Type(r.Node))
			}
			if r.Node == pg.queries[0] {
				t.Errorf("%s: query node leaked into filtered results", method)
			}
		}
	}
}

// TestDistributedRequiresWorkers pins the planning error for a Distributed
// request on an engine with no cluster.
func TestDistributedRequiresWorkers(t *testing.T) {
	pg := parityGraphs()[0]
	engine, err := NewEngine(pg.graph)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	_, err = engine.Rank(context.Background(), Request{Query: SingleNode(pg.queries[0]), K: 3, Method: Distributed})
	if err == nil || !strings.Contains(err.Error(), "WithWorkers") {
		t.Fatalf("expected a WithWorkers planning error, got %v", err)
	}
}

// TestDistributedRejectsForeignCluster pins the graph-identity check: an
// engine over one graph must refuse workers striped from a different graph,
// even one with the identical node count.
func TestDistributedRejectsForeignCluster(t *testing.T) {
	pg := parityGraphs()[0]
	impostor := testgraphsCycle(t, pg.graph.NumNodes())
	workers, err := LoopbackWorkers(impostor, 2)
	if err != nil {
		t.Fatalf("LoopbackWorkers: %v", err)
	}
	engine, err := NewEngine(pg.graph, WithWorkers(workers...))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	_, err = engine.Rank(context.Background(), Request{Query: SingleNode(pg.queries[0]), K: 3, Method: Distributed})
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("foreign cluster accepted (err=%v)", err)
	}
}

// TestDistributedLoopbackAndBatch runs the Distributed method over loopback
// workers and through RankBatch, confirming both agree with Exact.
func TestDistributedLoopbackAndBatch(t *testing.T) {
	pg := parityGraphs()[0]
	workers, err := LoopbackWorkers(pg.graph, 3)
	if err != nil {
		t.Fatalf("LoopbackWorkers: %v", err)
	}
	engine, err := NewEngine(pg.graph, WithWorkers(workers...))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	var reqs []Request
	for _, q := range pg.queries {
		reqs = append(reqs, Request{Query: SingleNode(q), K: 5, Method: Distributed})
	}
	batch, err := engine.RankBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("RankBatch: %v", err)
	}
	for i, q := range pg.queries {
		exact, err := engine.Rank(context.Background(), Request{Query: SingleNode(q), K: 5, Method: Exact})
		if err != nil {
			t.Fatalf("exact: %v", err)
		}
		if len(batch[i].Results) != len(exact.Results) {
			t.Fatalf("q%d: batch distributed %d results, exact %d", q, len(batch[i].Results), len(exact.Results))
		}
		for j := range exact.Results {
			if batch[i].Results[j] != exact.Results[j] {
				t.Errorf("q%d rank %d: distributed %+v, exact %+v", q, j, batch[i].Results[j], exact.Results[j])
			}
		}
	}
}

// TestDeployStripesBringsUpEmptyWorkers boots empty HTTP workers, ships them
// their stripes through DeployStripes, and runs a distributed query.
func TestDeployStripesBringsUpEmptyWorkers(t *testing.T) {
	pg := parityGraphs()[1]
	var ts []Transport
	for i := 0; i < 2; i++ {
		srv := httptest.NewServer(distributed.NewWorker(nil).Handler())
		t.Cleanup(srv.Close)
		ts = append(ts, DialWorker(srv.URL))
	}
	if err := DeployStripes(context.Background(), pg.graph, ts); err != nil {
		t.Fatalf("DeployStripes: %v", err)
	}
	engine, err := NewEngine(pg.graph, WithWorkers(ts...))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	resp, err := engine.Rank(context.Background(), Request{Query: SingleNode(pg.queries[0]), K: 3, Method: Distributed})
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	if len(resp.Results) == 0 {
		t.Fatalf("no results from deployed cluster")
	}
}
