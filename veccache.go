package roundtriprank

import (
	"container/list"
	"context"
	"sync"
)

// vecKey identifies one cached pair of single-node score vectors. Alpha and
// tolerance are part of the key because per-request overrides change the
// vectors; beta is not, because it only affects the combination step. The
// snapshot epoch is part of the key because a Commit changes the graph the
// vectors were solved on: entries of different epochs never alias, so a
// query that started before an Apply keeps reading vectors consistent with
// its own snapshot.
type vecKey struct {
	node       NodeID
	epoch      uint64
	alpha, tol float64
}

// vecEntry is one cache slot. It is published in the map before the vectors
// are computed so that concurrent requests for the same key wait on ready
// instead of duplicating the solve.
type vecEntry struct {
	key   vecKey
	ready chan struct{} // closed when f, t, err are final
	done  bool          // set under vecCache.mu just before ready closes
	f, t  []float64
	err   error
}

// vecCache is a small LRU over single-node F-Rank/T-Rank vector pairs with
// in-flight deduplication. By the Linearity Theorem these vectors are exact
// building blocks for any query distribution, which is what makes them safe
// to share across requests and batches.
type vecCache struct {
	mu      sync.Mutex
	cap     int
	entries map[vecKey]*list.Element // value: *vecEntry
	lru     *list.List               // front = most recently used
	hits    uint64
	misses  uint64
}

func newVecCache(capacity int) *vecCache {
	return &vecCache{
		cap:     capacity,
		entries: make(map[vecKey]*list.Element),
		lru:     list.New(),
	}
}

// get returns the vector pair for key, computing it with compute on a miss.
// Concurrent gets of the same key block until the first computation finishes
// (or their own context is cancelled). A failed computation is evicted
// immediately, so one request's cancellation does not poison the key: waiters
// observe the error and retry the computation themselves.
func (c *vecCache) get(ctx context.Context, key vecKey, compute func() ([]float64, []float64, error)) ([]float64, []float64, error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			e := el.Value.(*vecEntry)
			c.lru.MoveToFront(el)
			c.hits++
			c.mu.Unlock()
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
			if e.err != nil {
				continue // owner failed and removed the entry; try to own it
			}
			return e.f, e.t, nil
		}
		e := &vecEntry{key: key, ready: make(chan struct{})}
		el := c.lru.PushFront(e)
		c.entries[key] = el
		c.misses++
		c.mu.Unlock()

		e.f, e.t, e.err = compute()

		c.mu.Lock()
		e.done = true
		if e.err != nil {
			c.lru.Remove(el)
			delete(c.entries, key)
		} else {
			c.evictLocked()
		}
		c.mu.Unlock()
		close(e.ready)
		return e.f, e.t, e.err
	}
}

// evictLocked drops least-recently-used completed entries until the cache is
// within capacity. In-flight entries are skipped: evicting them would detach
// waiters from the computation they are blocked on.
func (c *vecCache) evictLocked() {
	for el := c.lru.Back(); el != nil && c.lru.Len() > c.cap; {
		prev := el.Prev()
		e := el.Value.(*vecEntry)
		if e.done {
			c.lru.Remove(el)
			delete(c.entries, e.key)
		}
		el = prev
	}
}

// invalidateExcept drops every completed entry whose key belongs to a
// different epoch than the one given. Apply calls it after swapping
// snapshots, so superseded vectors free their memory immediately instead of
// waiting for LRU pressure. In-flight entries are left alone — their waiters
// are blocked on the computation — and expire via normal LRU once done; they
// can only be hit by queries still pinned to their own epoch, for which they
// remain correct.
func (c *vecCache) invalidateExcept(epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*vecEntry)
		if e.done && e.key.epoch != epoch {
			c.lru.Remove(el)
			delete(c.entries, e.key)
		}
	}
}

// stats returns cumulative hit/miss counters and the current entry count.
func (c *vecCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.lru.Len()
}
