package roundtriprank

import (
	"container/list"
	"context"
	"sync"
)

// vecKey identifies one cached pair of single-node score vectors. Alpha and
// tolerance are part of the key because per-request overrides change the
// vectors; beta is not, because it only affects the combination step.
type vecKey struct {
	node       NodeID
	alpha, tol float64
}

// vecEntry is one cache slot. It is published in the map before the vectors
// are computed so that concurrent requests for the same key wait on ready
// instead of duplicating the solve.
type vecEntry struct {
	key   vecKey
	ready chan struct{} // closed when f, t, err are final
	done  bool          // set under vecCache.mu just before ready closes
	f, t  []float64
	err   error
}

// vecCache is a small LRU over single-node F-Rank/T-Rank vector pairs with
// in-flight deduplication. By the Linearity Theorem these vectors are exact
// building blocks for any query distribution, which is what makes them safe
// to share across requests and batches.
type vecCache struct {
	mu      sync.Mutex
	cap     int
	entries map[vecKey]*list.Element // value: *vecEntry
	lru     *list.List               // front = most recently used
	hits    uint64
	misses  uint64
}

func newVecCache(capacity int) *vecCache {
	return &vecCache{
		cap:     capacity,
		entries: make(map[vecKey]*list.Element),
		lru:     list.New(),
	}
}

// get returns the vector pair for key, computing it with compute on a miss.
// Concurrent gets of the same key block until the first computation finishes
// (or their own context is cancelled). A failed computation is evicted
// immediately, so one request's cancellation does not poison the key: waiters
// observe the error and retry the computation themselves.
func (c *vecCache) get(ctx context.Context, key vecKey, compute func() ([]float64, []float64, error)) ([]float64, []float64, error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			e := el.Value.(*vecEntry)
			c.lru.MoveToFront(el)
			c.hits++
			c.mu.Unlock()
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
			if e.err != nil {
				continue // owner failed and removed the entry; try to own it
			}
			return e.f, e.t, nil
		}
		e := &vecEntry{key: key, ready: make(chan struct{})}
		el := c.lru.PushFront(e)
		c.entries[key] = el
		c.misses++
		c.mu.Unlock()

		e.f, e.t, e.err = compute()

		c.mu.Lock()
		e.done = true
		if e.err != nil {
			c.lru.Remove(el)
			delete(c.entries, key)
		} else {
			c.evictLocked()
		}
		c.mu.Unlock()
		close(e.ready)
		return e.f, e.t, e.err
	}
}

// evictLocked drops least-recently-used completed entries until the cache is
// within capacity. In-flight entries are skipped: evicting them would detach
// waiters from the computation they are blocked on.
func (c *vecCache) evictLocked() {
	for el := c.lru.Back(); el != nil && c.lru.Len() > c.cap; {
		prev := el.Prev()
		e := el.Value.(*vecEntry)
		if e.done {
			c.lru.Remove(el)
			delete(c.entries, e.key)
		}
		el = prev
	}
}

// stats returns cumulative hit/miss counters and the current entry count.
func (c *vecCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.lru.Len()
}
