package roundtriprank

import (
	"context"
	"errors"
	"testing"
	"time"

	"roundtriprank/internal/testgraphs"
)

// TestValidationErrorClassification pins which engine failures surface as
// *ValidationError (caller faults an HTTP layer should map to 400) and which
// do not. The serve package's status mapping relies on this split.
func TestValidationErrorClassification(t *testing.T) {
	toy := testgraphs.NewToy()
	engine, err := NewEngine(toy.Graph)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ctx := context.Background()

	bad := []struct {
		name string
		req  Request
	}{
		{"zero K", Request{Query: SingleNode(toy.T1), K: 0}},
		{"node out of range", Request{Query: SingleNode(NodeID(1 << 30)), K: 5}},
		{"alpha out of range", Request{Query: SingleNode(toy.T1), K: 5, Alpha: 1.5}},
		{"negative epsilon", Request{Query: SingleNode(toy.T1), K: 5, Epsilon: -0.1}},
		{"beta out of range", Request{Query: SingleNode(toy.T1), K: 5, Beta: Float64(2)}},
		{"distributed without workers", Request{Query: SingleNode(toy.T1), K: 5, Method: Distributed}},
		{"empty query", Request{Query: Query{}, K: 5}},
	}
	for _, c := range bad {
		_, err := engine.Rank(ctx, c.req)
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Errorf("%s: Rank error = %v (%T), want *ValidationError", c.name, err, err)
		}
	}

	if _, err := ParseMethod("no-such-method"); err != nil {
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Errorf("ParseMethod error = %v (%T), want *ValidationError", err, err)
		}
	} else {
		t.Error("ParseMethod accepted an unknown method")
	}

	// A cancelled context is not the caller's request being malformed.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	_, err = engine.Rank(cancelled, Request{Query: SingleNode(toy.T1), K: 5, Method: Exact})
	var ve *ValidationError
	if errors.As(err, &ve) {
		t.Errorf("cancelled Rank classified as ValidationError: %v", err)
	}

	// Apply with a stale delta is a caller fault too.
	g := engine.View().(*Graph)
	d := NewDelta(g)
	if err := d.SetEdge(toy.T1, toy.T2, 1); err != nil {
		t.Fatalf("SetEdge: %v", err)
	}
	if _, err := engine.Apply(ctx, d); err != nil {
		t.Fatalf("first Apply: %v", err)
	}
	if _, err := engine.Apply(ctx, d); !errors.As(err, &ve) {
		t.Errorf("stale-delta Apply error = %v (%T), want *ValidationError", err, err)
	}
}

// TestQueryStatsHook checks the WithQueryStatsHook callback fires once per
// executed query with the resolved method, a positive duration, and the
// query's error (nil on success).
func TestQueryStatsHook(t *testing.T) {
	toy := testgraphs.NewToy()
	var stats []QueryStat
	engine, err := NewEngine(toy.Graph, WithQueryStatsHook(func(s QueryStat) {
		stats = append(stats, s)
	}))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ctx := context.Background()

	if _, err := engine.Rank(ctx, Request{Query: SingleNode(toy.T1), K: 3, Method: Exact}); err != nil {
		t.Fatalf("Rank: %v", err)
	}
	if len(stats) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(stats))
	}
	if stats[0].Method != Exact {
		t.Errorf("hook method = %v, want %v", stats[0].Method, Exact)
	}
	if stats[0].Elapsed <= 0 || stats[0].Elapsed > time.Minute {
		t.Errorf("hook elapsed = %v, want positive and sane", stats[0].Elapsed)
	}
	if stats[0].Err != nil {
		t.Errorf("hook err = %v, want nil", stats[0].Err)
	}

	// Validation failures never reach execution, so the hook must not fire.
	if _, err := engine.Rank(ctx, Request{Query: SingleNode(toy.T1), K: 0}); err == nil {
		t.Fatal("zero-K Rank succeeded")
	}
	if len(stats) != 1 {
		t.Fatalf("hook fired on a rejected plan (%d records)", len(stats))
	}

	// A cancelled execution reports its error through the hook.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	_, rankErr := engine.Rank(cancelled, Request{Query: SingleNode(toy.T2), K: 3, Method: Exact})
	if rankErr == nil {
		t.Fatal("Rank with cancelled context succeeded")
	}
	if len(stats) != 2 {
		t.Fatalf("hook fired %d times after cancelled query, want 2", len(stats))
	}
	if !errors.Is(stats[1].Err, context.Canceled) {
		t.Errorf("hook err = %v, want context.Canceled", stats[1].Err)
	}

	if _, err := NewEngine(toy.Graph, WithQueryStatsHook(nil)); err == nil {
		t.Error("NewEngine accepted a nil stats hook")
	}
}
