package roundtriprank

import (
	"math"
	"testing"

	"roundtriprank/internal/testgraphs"
)

func TestPublicAPIOnToyGraph(t *testing.T) {
	toy := testgraphs.NewToy()
	ranker, err := NewRanker(toy.Graph)
	if err != nil {
		t.Fatalf("NewRanker: %v", err)
	}
	if ranker.Alpha() != 0.25 || ranker.Beta() != 0.5 {
		t.Errorf("defaults wrong: alpha=%g beta=%g", ranker.Alpha(), ranker.Beta())
	}
	scores, err := ranker.Scores(SingleNode(toy.T1))
	if err != nil {
		t.Fatalf("Scores: %v", err)
	}
	if len(scores.RoundTripRank) != toy.Graph.NumNodes() {
		t.Fatalf("score vector length mismatch")
	}
	// v2 (important and specific) must beat v1 and v3.
	if !(scores.RoundTripRank[toy.V2] > scores.RoundTripRank[toy.V1]) ||
		!(scores.RoundTripRank[toy.V2] > scores.RoundTripRank[toy.V3]) {
		t.Errorf("v2 should win: %v", scores.RoundTripRank)
	}

	venueFilter := TypeFilter(toy.Graph, testgraphs.TypeVenue, toy.T1)
	ranked, err := ranker.Rank(SingleNode(toy.T1), 3, venueFilter)
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	if len(ranked) != 3 || ranked[0].Node != toy.V2 {
		t.Errorf("venue ranking wrong: %+v", ranked)
	}

	online, err := ranker.TopK(SingleNode(toy.T1), 4, 0.001)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(online) == 0 || online[0].Node != toy.T1 {
		t.Errorf("online top-1 should be the query itself: %+v", online)
	}
}

func TestOptions(t *testing.T) {
	toy := testgraphs.NewToy()
	r, err := NewRanker(toy.Graph, WithAlpha(0.3), WithBeta(0.7), WithTolerance(1e-10))
	if err != nil {
		t.Fatalf("NewRanker with options: %v", err)
	}
	if r.Alpha() != 0.3 || r.Beta() != 0.7 {
		t.Errorf("options not applied")
	}
	// Surfer composition: only importance surfers -> beta 0.
	r2, err := NewRanker(toy.Graph, WithSurferComposition(0, 5, 0))
	if err != nil {
		t.Fatalf("NewRanker: %v", err)
	}
	if r2.Beta() != 0 {
		t.Errorf("surfer composition beta = %g, want 0", r2.Beta())
	}
	// β = 0 ranking equals pure importance ranking.
	s, _ := r2.Scores(SingleNode(toy.T1))
	for v := range s.RoundTripRank {
		if math.Abs(s.RoundTripRank[v]-s.Importance[v]) > 1e-12 {
			t.Errorf("beta=0 should equal importance at node %d", v)
		}
	}

	for _, bad := range []Option{WithAlpha(0), WithAlpha(1), WithBeta(-1), WithBeta(2), WithTolerance(0), WithSurferComposition(0, 0, 0)} {
		if _, err := NewRanker(toy.Graph, bad); err == nil {
			t.Errorf("invalid option should error")
		}
	}
	if _, err := NewRanker(nil); err == nil {
		t.Errorf("nil view should error")
	}
	if _, err := NewRanker(NewGraphBuilder().MustBuild()); err == nil {
		t.Errorf("empty graph should error")
	}
}

func TestRankValidation(t *testing.T) {
	toy := testgraphs.NewToy()
	r, _ := NewRanker(toy.Graph)
	if _, err := r.Rank(SingleNode(toy.T1), 0); err == nil {
		t.Errorf("n=0 should error")
	}
	if _, err := r.Rank(Query{}, 3); err == nil {
		t.Errorf("empty query should error")
	}
	if _, err := r.TopK(Query{}, 3, 0.01); err == nil {
		t.Errorf("empty query should error in TopK")
	}
	if _, err := r.Scores(Query{}); err == nil {
		t.Errorf("empty query should error in Scores")
	}
}

func TestGraphBuilderReexports(t *testing.T) {
	b := NewGraphBuilder()
	a := b.AddNode(1, "a")
	c := b.AddNode(1, "b")
	b.MustAddUndirectedEdge(a, c, 2)
	g := b.MustBuild()
	if g.NumNodes() != 2 || g.NumEdges() != 2 {
		t.Errorf("builder re-export broken")
	}
	if g.NodeByLabel("missing") != NoNode {
		t.Errorf("NoNode re-export broken")
	}
	q := MultiNode(a, c)
	if len(q.Nodes) != 2 {
		t.Errorf("MultiNode broken")
	}
}
